"""Workload descriptors for the paper's two physical systems (Sec. 4).

A :class:`Workload` bundles everything the builders, the performance
model, and the benchmarks need to know about a system: the model
hyper-parameters (cutoffs, padded neighbor capacity), the physical
densities that determine *real* neighbor counts (and hence the padding
redundancy), and the MD protocol parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import ModelSpec

__all__ = ["Workload"]


@dataclass(frozen=True)
class Workload:
    """A named physical system with its paper parameters."""

    name: str
    rcut: float                  #: model cutoff (Å)
    rcut_smth: float             #: switch onset (Å)
    sel: tuple                   #: per-type padded capacities (sum = N_m)
    n_types: int
    masses: tuple                #: per-type masses (amu)
    atom_density: float          #: atoms / Å^3 at ambient conditions
    dt_fs: float                 #: MD timestep (paper protocol)
    tf_graph_mb: float           #: serialized model/graph size (Sec. 6.2.4)
    d1: int = 32
    m_sub: int = 16
    fit_width: int = 240
    type_fractions: tuple = (1.0,)   #: share of atoms per type

    @property
    def n_m(self) -> int:
        """Padded neighbor capacity ``N_m = sum(sel)``."""
        return int(sum(self.sel))

    @property
    def m_out(self) -> int:
        return 4 * self.d1

    def real_neighbors(self, margin: float = 0.0) -> float:
        """Expected neighbors within ``rcut + margin`` at ambient density.

        This is the count the redundancy-removed kernels actually process;
        the padded kernels always process ``N_m``.
        """
        r = self.rcut + margin
        return self.atom_density * 4.0 / 3.0 * np.pi * r**3

    @property
    def redundancy_ratio(self) -> float:
        """Padded-over-real work ratio (Sec. 3.4.2: higher for copper)."""
        return self.n_m / self.real_neighbors()

    def sel_for_engine(self, rcut: float | None = None, skin: float = 2.0,
                       safety: float = 1.5) -> tuple:
        """Per-type padded capacities covering the engine's Verlet lists.

        The paper's ``sel`` covers neighbors within ``rcut`` only; this
        engine keeps the whole ``rcut + skin`` list in the model arrays
        (LAMMPS-style), so capacities are sized from the density within
        that radius, per type, with a safety margin for fluctuations.
        """
        r = (rcut if rcut is not None else self.rcut) + skin
        total = self.atom_density * 4.0 / 3.0 * np.pi * r**3
        return tuple(
            int(np.ceil(total * frac * safety)) for frac in self.type_fractions
        )

    def model_spec(self, d1: int | None = None, m_sub: int | None = None,
                   fit_width: int | None = None, sel=None,
                   seed: int = 2022) -> ModelSpec:
        """A :class:`ModelSpec` for this workload (optionally downsized —
        the laptop-scale tests shrink the nets, never the dataflow)."""
        return ModelSpec(
            rcut=self.rcut,
            rcut_smth=self.rcut_smth,
            sel=tuple(sel) if sel is not None else tuple(self.sel),
            n_types=self.n_types,
            d1=d1 if d1 is not None else self.d1,
            m_sub=m_sub if m_sub is not None else self.m_sub,
            fit_width=fit_width if fit_width is not None else self.fit_width,
            seed=seed,
        )
