"""The paper's physical systems: water and copper (Sec. 4)."""

from .copper import COPPER, COPPER_PAPER_SIZES, build_copper
from .registry import Workload
from .silicon import SILICON, build_silicon
from .water import WATER, WATER_PAPER_SIZES, build_water

__all__ = [
    "COPPER",
    "COPPER_PAPER_SIZES",
    "SILICON",
    "WATER",
    "WATER_PAPER_SIZES",
    "build_silicon",
    "Workload",
    "build_copper",
    "build_water",
]
