"""The copper workload (Sec. 4).

Perfect FCC lattice with constant 3.634 Å, cutoff 8 Å (switch onset
2 Å before, in line with DeePMD's Cu models), padded neighbor capacity
512 (the model is trained up to high-pressure densities with up to 500
neighbors; at ambient density only ~180 are real — the high padding
redundancy Sec. 3.4.2 exploits), timestep 1 fs.
"""

from __future__ import annotations

from ..md.lattice import COPPER_LATTICE_CONSTANT, copper_system
from ..units import MASS_AMU
from .registry import Workload

__all__ = ["COPPER", "build_copper", "COPPER_PAPER_SIZES"]

#: FCC copper: 4 atoms per a^3 cell.
_COPPER_ATOM_DENSITY = 4.0 / COPPER_LATTICE_CONSTANT**3

COPPER = Workload(
    name="copper",
    rcut=8.0,
    rcut_smth=6.0,
    sel=(512,),
    n_types=1,
    masses=(MASS_AMU["Cu"],),
    atom_density=_COPPER_ATOM_DENSITY,
    dt_fs=1.0,
    tf_graph_mb=13.0,  # "the TensorFlow graph for the copper system is small (13 MB)"
    type_fractions=(1.0,),
)

#: Paper system sizes (atoms).
COPPER_PAPER_SIZES = {
    "v100_single": 6_912,
    "a64fx_single": 2_592,
    "fugaku_strong": 2_177_280,
    "summit_strong": 13_500_000,
    "summit_weak_per_task": 122_779,
    "fugaku_weak_per_task": 6_804,
    "summit_weak_max": 3_400_000_000,
    "fugaku_weak_max": 17_300_000_000,
}


def build_copper(n_cells=(4, 4, 4)):
    """FCC copper configuration: ``(coords, types, box)``.

    ``(12, 12, 12)`` reproduces the paper's 6,912-atom single-GPU system;
    the default ``(4, 4, 4)`` is the 256-atom laptop-scale test size.
    """
    return copper_system(n_cells)
