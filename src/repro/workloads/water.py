"""The water workload (Sec. 4).

Cutoff 6 Å (switch from 0.5 Å before), at most 138 neighbors, padded
capacity 128 in the baseline model [20], timestep 0.5 fs, types O/H.
The 192-atom base cell replicates to every size the paper uses.
"""

from __future__ import annotations

from ..md.lattice import water_system
from ..units import MASS_AMU
from .registry import Workload

__all__ = ["WATER", "build_water", "WATER_PAPER_SIZES"]

#: Liquid water at 0.997 g/cm^3: 0.100 atoms per Å^3 (O + 2 H per 18 amu).
_WATER_ATOM_DENSITY = 0.997 / 18.015 * 0.602214076 * 3.0

WATER = Workload(
    name="water",
    rcut=6.0,
    rcut_smth=0.5,
    # DeePMD water sel: (O, H) capacities summing to the baseline's 128.
    sel=(46, 92),
    n_types=2,
    masses=(MASS_AMU["O"], MASS_AMU["H"]),
    atom_density=_WATER_ATOM_DENSITY,
    dt_fs=0.5,
    tf_graph_mb=113.0,  # water graph+buffers; copper's is 13 MB (Sec. 6.2.4)
    type_fractions=(1.0 / 3.0, 2.0 / 3.0),
)

#: Paper system sizes (atoms): single V100 test, single A64FX test,
#: Fugaku strong scaling, Summit strong scaling.
WATER_PAPER_SIZES = {
    "v100_single": 12_880,
    "a64fx_single": 18_432,
    "fugaku_strong": 8_294_400,
    "summit_strong": 41_472_000,
    "a64fx_flat_mpi_max": 110_592,
    "a64fx_hybrid_max": 165_888,
}


def build_water(reps=(2, 2, 2), seed: int = 7):
    """Replicated water configuration: ``(coords, types, box)``.

    ``reps=(2,2,2)`` gives 1,536 atoms — the laptop-scale default.
    """
    return water_system(reps, seed=seed)
