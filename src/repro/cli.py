"""Command-line interface.

Subcommands mirror how a user actually drives the system::

    python -m repro.cli run --system copper --cells 4 4 4 --steps 99
    python -m repro.cli compress --interval 0.01 --out model.npz
    python -m repro.cli project --experiment strong --machine Summit
    python -m repro.cli info

The ``run``/``serve`` flag groups are *generated* from the config
schema (:mod:`repro.config`): every knob is declared once, resolves
through the layered config spine (defaults -> host -> cached tuned
config -> restart checkpoint -> ``--config`` file -> explicit flags),
and the resolved values — with per-field layer provenance — ride into
checkpoints and run reports.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from .config import add_config_flags

    p = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Extending the limit of MD with ab "
                     "initio accuracy to 10 billion atoms' (PPoPP 2022)"),
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an MD simulation")
    add_config_flags(run, "run")

    comp = sub.add_parser("compress",
                          help="build and save a compressed model")
    comp.add_argument("--system", choices=["copper", "water"],
                      default="copper")
    comp.add_argument("--interval", type=float, default=0.01)
    comp.add_argument("--d1", type=int, default=16)
    comp.add_argument("--out", type=str, required=True)

    proj = sub.add_parser("project",
                          help="machine-scale projections (perf model)")
    proj.add_argument("--experiment",
                      choices=["strong", "weak", "ladder", "table2",
                               "capacity", "validate"],
                      default="table2")
    proj.add_argument("--machine", choices=["Summit", "Fugaku"],
                      default="Summit")
    proj.add_argument("--system", choices=["copper", "water"],
                      default="copper")

    srv = sub.add_parser(
        "serve",
        help="drive the batched evaluation service on synthetic traffic")
    add_config_flags(srv, "serve")

    sub.add_parser("info", help="print package and paper summary")
    return p


def _make_injector(cfg, n_ranks: int = 1, n_shards: int = 1,
                   rebuild_every: int = 0, n_steps: int | None = None):
    """Build the fault injector the inject-fault/chaos-profile knobs ask
    for (None when neither is set).  Chaos faults are appended to any
    explicitly armed ones; the schedule is printed so a soak run's storm
    is visible up front."""
    robust = cfg.robust
    injector = None
    if robust.inject_fault:
        from repro.robust import FaultInjector

        injector = FaultInjector.from_specs(robust.inject_fault,
                                            seed=cfg.model.seed)
    if robust.chaos_profile:
        from repro.robust import ChaosSchedule

        seed = robust.chaos_seed if robust.chaos_seed is not None \
            else cfg.model.seed
        schedule = ChaosSchedule(
            cfg.model.steps if n_steps is None else n_steps, seed=seed,
            profile=robust.chaos_profile,
            n_ranks=n_ranks, n_shards=n_shards,
            checkpoint_every=robust.checkpoint_every,
            rebuild_every=rebuild_every)
        print(schedule.describe())
        if injector is None:
            injector = schedule.injector()
        else:
            injector.faults.extend(schedule.build())
    return injector


def _make_obs(cfg):
    """Build the (tracer, metrics) pair the trace/metrics knobs ask for;
    (None, None) when neither is set, so the hot path keeps its
    zero-overhead NULL_TRACER wiring.  A requested report also arms a
    tracer (phase shares are part of the report) and a registry
    (counters and histograms are too) even when no trace/metrics file
    was asked for."""
    obs = cfg.obs
    tracer = metrics = None
    if obs.trace or obs.report:
        from repro.obs import Tracer

        tracer = Tracer()
    if obs.metrics:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry(sink=obs.metrics)
    elif obs.report:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    return tracer, metrics


def _finish_obs(cfg, tracer, metrics) -> None:
    """Flush observability outputs and print the summary table."""
    if tracer is not None and cfg.obs.trace:
        tracer.export(cfg.obs.trace)
        print(f"trace written to {cfg.obs.trace} "
              f"({len(tracer.finished())} spans)")
    if metrics is not None and cfg.obs.metrics:
        metrics.write_summary()
        metrics.close()
        print(metrics.summary_table())
        print(f"metrics written to {cfg.obs.metrics}")


def _write_run_report(cfg, kind, runtime, tracer=None, metrics=None,
                      flight=None, wall=None, slo=None) -> None:
    """Write the report JSON + markdown pair (no-op without --report).

    The report's resolved-config block is the serialized
    :class:`~repro.config.RunConfig` with per-field layer provenance;
    run-derived facts (atom count, dt, ...) ride in a ``runtime``
    sub-block so config and measurement stay distinguishable.
    """
    if not cfg.obs.report:
        return
    from repro.obs import build_run_report, write_report

    config_block = cfg.to_dict(provenance=True)
    config_block["runtime"] = dict(runtime or {})
    report = build_run_report(kind, config=config_block, tracer=tracer,
                              metrics=metrics, wall_seconds=wall, slo=slo,
                              flight=flight)
    path = write_report(report, cfg.obs.report)
    print(f"run report written to {path} (+ .md)")


def _cmd_run_distributed(cfg) -> int:
    """``run --ranks RxSxT [--threads K]``: the hybrid distributed path.

    The serial :func:`repro.quick_simulation` setup is reused verbatim
    for the model and the initial conditions, so the distributed run
    reproduces the serial trajectory (coordinates bitwise; see
    ``tests/test_hybrid_matrix.py``).
    """
    import time as _time

    import repro
    from repro.io import format_thermo_table
    from repro.parallel import SimulationScheme, run_distributed_md
    from repro.workloads import COPPER, WATER

    for flag, name in ((cfg.robust.restart, "--restart"),
                       (cfg.robust.guard_tolerances, "--guard-tolerances"),
                       (cfg.obs.xyz, "--xyz")):
        if flag:
            print(f"error: {name} is not supported with --ranks",
                  file=sys.stderr)
            return 2
    scheme = SimulationScheme.parse(cfg.parallel.ranks,
                                    threads=cfg.parallel.threads)
    sim = repro.simulation_from_config(cfg)
    workload = COPPER if cfg.model.system == "copper" else WATER
    injector = _make_injector(cfg, n_ranks=scheme.n_ranks,
                              n_shards=scheme.threads_per_rank,
                              rebuild_every=sim.rebuild_every)
    print(f"{cfg.model.system}: {len(sim.coords)} atoms, "
          f"{'baseline' if cfg.model.baseline else 'compressed'} model, "
          f"{scheme}")
    tracer, metrics = _make_obs(cfg)
    from repro.obs import FlightRecorder

    # Built here (not defaulted inside run_distributed_md) so the run
    # report below can reference the same recorder.
    flight = FlightRecorder(dump_dir=cfg.obs.flight_dir)
    start = _time.perf_counter()
    result = run_distributed_md(
        scheme.n_ranks, scheme.grid_dims, sim.coords, sim.types, sim.box,
        workload.masses, sim.forcefield.model, dt_fs=sim.dt_fs,
        n_steps=cfg.model.steps, rebuild_every=sim.rebuild_every,
        skin=sim.search.skin, sel=sim.search.sel,
        velocities=sim.velocities, thermo_every=cfg.obs.thermo_every,
        injector=injector,
        tracer=tracer,
        metrics=metrics,
        flight=flight,
        config=cfg,
    )
    wall = _time.perf_counter() - start
    if injector is not None and injector.log:
        for fired in injector.log:
            print(f"injected fault: {fired}")
    for ev in result.rank_restarts:
        print(f"rank {ev.rank} failed at step {ev.step} ({ev.error}); "
              f"world restarted from shard step {ev.restart_step}")
    print(format_thermo_table(result.thermo))
    print(f"comm: {result.forward_bytes} B forward, "
          f"{result.reverse_bytes} B reverse, "
          f"{result.migrate_bytes} B migrate, "
          f"max {result.max_ghost_atoms} ghosts/rank")
    ns = cfg.model.steps * sim.dt_fs * 1e-6
    print(f"throughput: {ns / (wall / 86400.0):.3f} ns/day")
    _write_run_report(
        cfg, "run-distributed",
        {"atoms": len(sim.coords), "dt_fs": sim.dt_fs},
        tracer=tracer, metrics=metrics, flight=flight, wall=wall)
    _finish_obs(cfg, tracer, metrics)
    return 0


def _cmd_run(args) -> int:
    import repro
    from repro.config import config_from_args
    from repro.io import format_thermo_table

    cfg = config_from_args(args, "run")
    if cfg.parallel.ranks:
        return _cmd_run_distributed(cfg)
    tracer, metrics = _make_obs(cfg)
    sim = repro.simulation_from_config(cfg, tracer=tracer, metrics=metrics)
    if cfg.robust.restart:
        from repro.io import restart_simulation

        # The model is deterministic in --system/--seed; reuse the one
        # simulation_from_config just built and restore the state on
        # top.  The thread count resolves through the config spine: the
        # checkpoint's persisted config supplies the original run's
        # threads (and layout/chunk/guards, already applied to the
        # model above) unless an explicit flag overrode it.  For
        # pre-spine checkpoints (no persisted config) the provenance
        # stays "default" and threads=None lets the checkpoint's own
        # metadata thread count win, exactly as before.
        threads_set = cfg.provenance.get("parallel.threads",
                                         "default") != "default"
        sim = restart_simulation(
            cfg.robust.restart, sim.forcefield,
            threads=cfg.parallel.threads if threads_set else None,
            engine=sim.engine, config=cfg)
        if tracer is not None:
            sim.tracer = tracer
        if metrics is not None:
            sim.metrics = metrics
        print(f"restarted from {cfg.robust.restart} at step {sim.step}")
    if cfg.obs.flight_dir:
        sim.flight.dump_dir = cfg.obs.flight_dir
    writer = None
    if cfg.obs.xyz:
        from repro.io.trajectory import XYZTrajectoryWriter

        names = (["Cu"] if cfg.model.system == "copper" else ["O", "H"])
        symbols = [names[t] for t in sim.types]
        writer = XYZTrajectoryWriter(cfg.obs.xyz, symbols)
        writer.write(sim.coords, sim.box, 0, sim.energy)
    threads = cfg.parallel.threads
    print(f"{cfg.model.system}: {len(sim.coords)} atoms, "
          f"{'baseline' if cfg.model.baseline else 'compressed'} model, "
          f"{threads} thread{'s' if threads != 1 else ''}")

    if cfg.robust.shard_timeout is not None and sim.engine is not None:
        sim.engine.shard_timeout = cfg.robust.shard_timeout
        sim.engine.metrics = metrics
    import time as _time

    robust_run = (cfg.robust.checkpoint_every or cfg.robust.inject_fault
                  or cfg.robust.guard_tolerances
                  or cfg.robust.chaos_profile or cfg.robust.escalate)
    start = _time.perf_counter()
    if robust_run:
        from repro.robust import (
            CheckpointManager,
            GuardTolerances,
            HealthMonitor,
            run_with_recovery,
        )

        tolerances = GuardTolerances.from_spec(cfg.robust.guard_tolerances)
        if cfg.robust.guard_every > 1:
            tolerances.guard_every = cfg.robust.guard_every
        sim.monitor = HealthMonitor(tolerances)
        injector = _make_injector(cfg, n_shards=threads,
                                  rebuild_every=sim.rebuild_every)
        if injector is not None:
            sim.attach_injector(injector)
        manager = CheckpointManager(cfg.robust.checkpoint_dir,
                                    keep_last=cfg.robust.keep_last,
                                    metrics=metrics,
                                    write_deadline=cfg.robust.write_deadline)
        sim, report = run_with_recovery(
            sim, cfg.model.steps, manager=manager,
            thermo_every=cfg.obs.thermo_every,
            config=cfg,
        )
        manager.flush()
        if sim.injector is not None and sim.injector.log:
            for fired in sim.injector.log:
                print(f"injected fault: {fired}")
        for event in report.events:
            print(f"health violation at step {event.step}: {event.error}")
            print(f"  rolled back to step {event.rollback_step} "
                  f"(dt = {event.dt_fs} fs, rung = {event.rung})")
        if report.escalations:
            print(f"escalations taken: {', '.join(report.escalations)}")
        print(f"completed step {report.final_step} with "
              f"{report.retries} rollback(s); checkpoints in "
              f"{cfg.robust.checkpoint_dir}")
    else:
        sim.run(cfg.model.steps, thermo_every=cfg.obs.thermo_every,
                deadline=cfg.robust.deadline,
                guard_every=cfg.robust.guard_every)
    if writer is not None:
        writer.write(sim.coords, sim.box, sim.step, sim.energy)
        writer.close()
        print(f"trajectory written to {cfg.obs.xyz}")
    print(format_thermo_table(sim.thermo_log))
    print(f"throughput: {sim.ns_per_day():.3f} ns/day")
    _write_run_report(
        cfg, "run",
        {"atoms": len(sim.coords), "dt_fs": sim.dt_fs},
        tracer=tracer, metrics=metrics, flight=sim.flight,
        wall=_time.perf_counter() - start)
    _finish_obs(cfg, tracer, metrics)
    return 0


def _cmd_compress(args) -> int:
    from repro.core import CompressedDPModel, DPModel
    from repro.io import save_compressed
    from repro.workloads import COPPER, WATER

    w = COPPER if args.system == "copper" else WATER
    spec = w.model_spec(d1=args.d1, m_sub=max(2, args.d1 // 2),
                        fit_width=4 * args.d1)
    model = DPModel(spec)
    comp = CompressedDPModel.compress(model, interval=args.interval)
    save_compressed(args.out, comp)
    print(f"compressed {args.system} model (d1={args.d1}, interval "
          f"{args.interval}) -> {args.out} "
          f"({comp.table_bytes / 1e6:.1f} MB of tables)")
    return 0


def _cmd_project(args) -> int:
    from repro.analysis import render_table
    from repro.core import Stage
    from repro.perf import (
        FUGAKU,
        SUMMIT,
        MemoryModel,
        V100,
        speedup_ladder,
        strong_scaling,
        table2_rows,
        weak_scaling,
    )
    from repro.workloads import COPPER, WATER

    machine = SUMMIT if args.machine == "Summit" else FUGAKU
    w = COPPER if args.system == "copper" else WATER

    if args.experiment == "strong":
        sizes = {"copper": {"Summit": 13_500_000, "Fugaku": 2_177_280},
                 "water": {"Summit": 41_472_000, "Fugaku": 8_294_400}}
        pts = strong_scaling(machine, w, sizes[w.name][machine.name],
                             [20, 57, 114, 285, 570, 1140, 2280, 4560])
        print(render_table(
            ["nodes", "ms/step", "eff %", "ns/day"],
            [[p.nodes, f"{p.step_seconds * 1e3:.2f}",
              f"{p.efficiency * 100:.1f}", f"{p.ns_per_day:.2f}"]
             for p in pts],
            title=f"strong scaling, {w.name} on {machine.name}"))
    elif args.experiment == "weak":
        per_task = 122_779 if machine.name == "Summit" else 6_804
        pts = weak_scaling(machine, w, per_task,
                           [machine.n_nodes // 256, machine.n_nodes // 16,
                            machine.n_nodes])
        print(render_table(
            ["nodes", "atoms", "s/step", "PFLOPS"],
            [[p.nodes, f"{p.atoms:.3g}", f"{p.step_seconds:.3f}",
              f"{p.pflops:.1f}"] for p in pts],
            title=f"weak scaling, {w.name} on {machine.name}"))
    elif args.experiment == "ladder":
        lad = speedup_ladder(machine.device, w)
        print(render_table(
            ["stage", "cumulative speedup"],
            [[s.value, f"{lad[s]:.2f}"] for s in Stage.ordered()],
            title=f"optimization ladder, {w.name} on {machine.device.name}"))
    elif args.experiment == "table2":
        print(render_table(
            ["machine", "system", "TtS us", "xPeak", "xPower"],
            [[r.machine, r.system, f"{r.tts_us:.2f}",
              f"{r.tts_x_peak:.1f}", f"{r.tts_x_power:.0f}"]
             for r in table2_rows([WATER, COPPER])],
            title="Table 2 — normalized single-device comparison"))
    elif args.experiment == "capacity":
        mm = MemoryModel(w, V100)
        print(f"V100 {w.name}: capacity gain {mm.capacity_gain():.1f}x, "
              f"baseline G share {mm.g_matrix_share() * 100:.0f}%")
    elif args.experiment == "validate":
        from repro.perf.validate import main as validate_main

        return validate_main()
    return 0


def _cmd_serve(args) -> int:
    """``serve``: synthetic mixed-traffic demo of the evaluation service.

    Builds one compressed model, spreads the configured jobs (jittered
    single-point evaluations, plus optional MD segments) over the
    client lanes, drains the queue, and prints the service's own
    metrics — queue depth, batch occupancy, p50/p99 latency.  With a
    chaos profile the job sequence runs under an armed fault storm
    (slow-job/flaky-job).
    """
    import numpy as np

    from repro.config import config_from_args
    from repro.core import CompressedDPModel, DPModel
    from repro.md import copper_system, water_system
    from repro.serve import EvalJob, EvalService, MDJob
    from repro.workloads import COPPER, WATER

    cfg = config_from_args(args, "serve")
    srv = cfg.serve
    w = COPPER if cfg.model.system == "copper" else WATER
    spec = w.model_spec(d1=8, m_sub=4, fit_width=32, seed=cfg.model.seed)
    model = CompressedDPModel.compress(DPModel(spec),
                                       interval=cfg.model.interval,
                                       layout=cfg.kernel.layout,
                                       chunk=cfg.kernel.kernel_chunk,
                                       accumulate=cfg.kernel.accumulate)
    if cfg.kernel.precision == "f32":
        from repro.core.precision import to_single_precision

        model = to_single_precision(model)
    if cfg.model.system == "copper":
        coords, types, box = copper_system(tuple(cfg.model.cells))
    else:
        coords, types, box = water_system(tuple(cfg.model.cells),
                                          seed=cfg.model.seed)
    injector = _make_injector(cfg, n_steps=srv.jobs, n_ranks=1, n_shards=1)
    tracer, metrics = _make_obs(cfg)
    service = EvalService.from_config(model, cfg, metrics=metrics,
                                      injector=injector, tracer=tracer)
    engine = service.engine
    rng = np.random.default_rng(cfg.model.seed)
    masses = np.asarray(w.masses)
    tickets = []
    for i in range(srv.jobs):
        jitter = rng.normal(0.0, 0.05, coords.shape)
        if srv.md_every and (i + 1) % srv.md_every == 0:
            job = MDJob(coords + jitter, types, box, masses,
                        n_steps=5, seed=cfg.model.seed + i)
        else:
            job = EvalJob(coords + jitter, types, box)
        tickets.append(service.submit(job,
                                      client=f"client{i % srv.clients}"))
    print(f"{cfg.model.system}: {len(coords)} atoms/job, {srv.jobs} jobs "
          f"over {srv.clients} clients, max_batch={srv.max_batch}, "
          f"threads={cfg.parallel.threads}")
    import time as _time

    start = _time.perf_counter()
    rounds = service.drain()
    wall = _time.perf_counter() - start
    by_status: dict[str, int] = {}
    for t in tickets:
        by_status[t.status] = by_status.get(t.status, 0) + 1
        if t.failure is not None:
            print(f"  job {t.job_id} [{t.status}] "
                  f"{t.failure.phase}: {t.failure.error}")
    snap = service.stats()
    occ = snap["histograms"].get("serve_batch_occupancy", {})
    lat = snap["histograms"].get("serve_latency_seconds", {})
    print(f"drained in {rounds} rounds: " +
          ", ".join(f"{k}={v}" for k, v in sorted(by_status.items())))
    if occ.get("count"):
        print(f"batch occupancy: mean {occ['mean']:.2f} "
              f"max {occ['max']:.0f} over {occ['count']} dispatches")
    if lat.get("count"):
        print(f"latency: p50 {lat['p50'] * 1e3:.2f} ms, "
              f"p99 {lat['p99'] * 1e3:.2f} ms")
    if tracer is not None and cfg.obs.trace:
        tracer.export(cfg.obs.trace)
        print(f"trace written to {cfg.obs.trace} "
              f"({len(tracer.finished())} spans)")
    if cfg.obs.report:
        slo = {
            "jobs": srv.jobs,
            "drain_rounds": rounds,
            "by_status": dict(sorted(by_status.items())),
            "batch_occupancy_mean": occ.get("mean"),
            "batch_occupancy_max": occ.get("max"),
            "latency_p50_s": lat.get("p50"),
            "latency_p99_s": lat.get("p99"),
        }
        _write_run_report(
            cfg, "serve",
            {"atoms_per_job": len(coords)},
            tracer=tracer, metrics=snap, flight=service.flight,
            wall=wall, slo=slo)
    if metrics is not None and cfg.obs.metrics:
        metrics.write_summary()
        metrics.close()
        print(f"metrics written to {cfg.obs.metrics}")
    if engine is not None:
        engine.close()
    failed = by_status.get("failed", 0) + by_status.get("timed-out", 0)
    return 1 if (failed and not cfg.robust.chaos_profile) else 0


def _cmd_info(_args) -> int:
    import repro

    print(f"repro {repro.__version__} — PPoPP'22 DeePMD-kit reproduction")
    print(__doc__)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return {
        "run": _cmd_run,
        "compress": _cmd_compress,
        "project": _cmd_project,
        "serve": _cmd_serve,
        "info": _cmd_info,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
