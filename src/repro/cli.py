"""Command-line interface.

Subcommands mirror how a user actually drives the system::

    python -m repro.cli run --system copper --cells 4 4 4 --steps 99
    python -m repro.cli compress --interval 0.01 --out model.npz
    python -m repro.cli project --experiment strong --machine Summit
    python -m repro.cli info
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Extending the limit of MD with ab "
                     "initio accuracy to 10 billion atoms' (PPoPP 2022)"),
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an MD simulation")
    run.add_argument("--system", choices=["copper", "water"],
                     default="copper")
    run.add_argument("--cells", type=int, nargs=3, default=[3, 3, 3],
                     help="FCC cells (copper) or 192-atom replications "
                          "(water)")
    run.add_argument("--steps", type=int, default=99)
    run.add_argument("--baseline", action="store_true",
                     help="use the uncompressed model")
    run.add_argument("--interval", type=float, default=0.01,
                     help="tabulation interval")
    run.add_argument("--temperature", type=float, default=330.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--layout", choices=["aos", "soa"], default=None,
                     help="coefficient-table memory layout for the "
                          "compressed model: 'aos' (operator-native) or "
                          "'soa' (the paper's transposed fast path; "
                          "bitwise identical in float64)")
    run.add_argument("--kernel-chunk", type=int, default=None,
                     metavar="PAIRS",
                     help="neighbor-chunk length for the fused kernels "
                          "(default: sized to the host L2 cache; results "
                          "are bitwise invariant under this knob)")
    run.add_argument("--threads", type=int, default=1,
                     help="shared-memory workers for the fused inference "
                          "path — the 'threads' factor of the paper's "
                          "ranks x threads schemes (1 = exact serial path)")
    run.add_argument("--ranks", type=str, default=None, metavar="RxSxT",
                     help="simulated-MPI rank grid for a distributed run "
                          "(e.g. 2x1x1); combined with --threads K this "
                          "is the paper's hybrid ranks x threads scheme "
                          "(Fig. 6c): every rank drives K engine workers")
    run.add_argument("--max-rank-restarts", type=int, default=2,
                     help="with --ranks and --checkpoint-every: rank "
                          "failures survived by re-spawning from shard "
                          "checkpoints before the run aborts")
    run.add_argument("--xyz", type=str, default=None,
                     help="write the trajectory to this extended-XYZ file")
    run.add_argument("--thermo-every", type=int, default=50)
    run.add_argument("--checkpoint-every", type=int, default=0,
                     help="save a restart file every N steps (0 = off); "
                          "enables rollback-and-retry on health "
                          "violations")
    run.add_argument("--checkpoint-dir", type=str, default="checkpoints",
                     help="directory for rotating restart files")
    run.add_argument("--keep-last", type=int, default=3,
                     help="checkpoints retained after rotation")
    run.add_argument("--restart", type=str, default=None, metavar="CKPT",
                     help="continue from this checkpoint file (the model "
                          "is rebuilt from --system/--seed as usual; the "
                          "state comes from the file)")
    run.add_argument("--guard-tolerances", type=str, default=None,
                     metavar="SPEC",
                     help="enable per-step health guards; 'default' or "
                          "e.g. 'disp=1.0,drift=0.05' "
                          "(Å/step, eV/atom)")
    run.add_argument("--inject-fault", action="append", default=None,
                     metavar="SPEC",
                     help="deterministic fault injection, repeatable: "
                          "KIND[@STEP[:TARGET]][~DURATION][%%P] with KIND "
                          "one of nan-forces, inf-energy, "
                          "truncate-checkpoint, kill-worker, drop-ghost, "
                          "kill-rank, stall-shard, slow-io, stall-ghost, "
                          "flaky-forces (e.g. nan-forces@10, "
                          "kill-rank@5:1, stall-shard@10:0~0.5)")
    run.add_argument("--chaos-profile", type=str, default=None,
                     metavar="NAME",
                     help="arm a seeded stochastic fault storm instead of "
                          "(or on top of) --inject-fault: calm, crashes, "
                          "stalls, soak, or storm; the schedule is a pure "
                          "function of --chaos-seed and the run topology")
    run.add_argument("--chaos-seed", type=int, default=None,
                     help="seed for --chaos-profile (default: --seed)")
    run.add_argument("--max-retries", type=int, default=3,
                     help="rollback budget before a health violation "
                          "aborts the run (or starts climbing the "
                          "escalation ladder with --escalate)")
    run.add_argument("--halve-dt", action="store_true",
                     help="halve the timestep on each rollback")
    run.add_argument("--escalate", action="store_true",
                     help="after --max-retries, climb the escalation "
                          "ladder (halve dt, degrade threads, deep "
                          "rollback) instead of aborting immediately")
    run.add_argument("--deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock budget for the run; checked at the "
                          "top of every MD step, raises a typed "
                          "DeadlineExceededError when spent")
    run.add_argument("--heartbeat-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="with --ranks: per-phase heartbeat on ghost "
                          "exchange / force reduction; a stalled peer is "
                          "detected and the world re-spawned from shard "
                          "checkpoints")
    run.add_argument("--shard-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-shard soft deadline in the threaded "
                          "engine; hung shards are quarantined and "
                          "re-executed serially")
    run.add_argument("--write-deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="per-checkpoint-write budget; writes that "
                          "exceed it are skipped (checkpoint_skipped "
                          "metric) instead of stalling the step loop")
    run.add_argument("--trace", type=str, default=None, metavar="FILE",
                     help="write a Chrome trace-event JSON of the run "
                          "(open in Perfetto or chrome://tracing; one "
                          "lane per rank/engine thread)")
    run.add_argument("--metrics", type=str, default=None, metavar="FILE",
                     help="stream per-step and per-event metrics to this "
                          "JSONL file and print an end-of-run summary "
                          "table")
    run.add_argument("--report", type=str, default=None, metavar="FILE",
                     help="write a schema-versioned run report (host "
                          "info, config, phase shares, metrics) as JSON "
                          "plus a rendered .md sibling; the input of "
                          "tools/bench_regress.py")
    run.add_argument("--flight-dir", type=str, default=None, metavar="DIR",
                     help="directory for flight-recorder failure dumps "
                          "(default: the checkpoint directory when "
                          "checkpointing is on; recording itself is "
                          "always on)")

    comp = sub.add_parser("compress",
                          help="build and save a compressed model")
    comp.add_argument("--system", choices=["copper", "water"],
                      default="copper")
    comp.add_argument("--interval", type=float, default=0.01)
    comp.add_argument("--d1", type=int, default=16)
    comp.add_argument("--out", type=str, required=True)

    proj = sub.add_parser("project",
                          help="machine-scale projections (perf model)")
    proj.add_argument("--experiment",
                      choices=["strong", "weak", "ladder", "table2",
                               "capacity", "validate"],
                      default="table2")
    proj.add_argument("--machine", choices=["Summit", "Fugaku"],
                      default="Summit")
    proj.add_argument("--system", choices=["copper", "water"],
                      default="copper")

    srv = sub.add_parser(
        "serve",
        help="drive the batched evaluation service on synthetic traffic")
    srv.add_argument("--system", choices=["copper", "water"],
                     default="copper")
    srv.add_argument("--cells", type=int, nargs=3, default=[3, 3, 3],
                     help="unit cells of the per-job configuration")
    srv.add_argument("--jobs", type=int, default=16,
                     help="total jobs submitted")
    srv.add_argument("--clients", type=int, default=3,
                     help="jobs are spread round-robin over this many "
                          "clients")
    srv.add_argument("--max-batch", type=int, default=8,
                     help="most same-shaped jobs packed per dispatch")
    srv.add_argument("--threads", type=int, default=1,
                     help="engine threads; batches run concurrently, "
                          "results stay bitwise")
    srv.add_argument("--capacity", type=int, default=64,
                     help="queue bound (backpressure past it)")
    srv.add_argument("--deadline", type=float, default=None,
                     help="per-job budget in seconds")
    srv.add_argument("--md-every", type=int, default=0,
                     help="every Nth job is a short MD segment instead "
                          "of a single-point evaluation (0 = never)")
    srv.add_argument("--interval", type=float, default=0.05)
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--metrics", type=str, default=None,
                     help="write metrics JSONL here")
    srv.add_argument("--trace", type=str, default=None, metavar="FILE",
                     help="write a Chrome trace-event JSON of the serve "
                          "run (queue wait / batch pack / packed eval "
                          "spans)")
    srv.add_argument("--report", type=str, default=None, metavar="FILE",
                     help="write a schema-versioned run report (host "
                          "info, config, serve SLOs) as JSON plus a "
                          "rendered .md sibling")
    srv.add_argument("--chaos-profile", type=str, default=None,
                     help="arm a chaos storm (e.g. 'serve') over the "
                          "job sequence")
    srv.add_argument("--chaos-seed", type=int, default=None)

    sub.add_parser("info", help="print package and paper summary")
    return p


def _make_injector(args, n_ranks: int = 1, n_shards: int = 1,
                   rebuild_every: int = 50):
    """Build the fault injector the --inject-fault/--chaos-profile flags
    ask for (None when neither is given).  Chaos faults are appended to
    any explicitly armed ones; the schedule is printed so a soak run's
    storm is visible up front."""
    injector = None
    if args.inject_fault:
        from repro.robust import FaultInjector

        injector = FaultInjector.from_specs(args.inject_fault,
                                            seed=args.seed)
    if args.chaos_profile:
        from repro.robust import ChaosSchedule

        seed = args.chaos_seed if args.chaos_seed is not None else args.seed
        schedule = ChaosSchedule(
            args.steps, seed=seed, profile=args.chaos_profile,
            n_ranks=n_ranks, n_shards=n_shards,
            checkpoint_every=args.checkpoint_every,
            rebuild_every=rebuild_every)
        print(schedule.describe())
        if injector is None:
            injector = schedule.injector()
        else:
            injector.faults.extend(schedule.build())
    return injector


def _make_obs(args):
    """Build the (tracer, metrics) pair the --trace/--metrics flags ask
    for; (None, None) when neither is given, so the hot path keeps its
    zero-overhead NULL_TRACER wiring.  ``--report`` also arms a tracer
    (phase shares are part of the report) and a registry (counters and
    histograms are too) even when no trace/metrics file was asked for.
    """
    tracer = metrics = None
    if args.trace or getattr(args, "report", None):
        from repro.obs import Tracer

        tracer = Tracer()
    if args.metrics:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry(sink=args.metrics)
    elif getattr(args, "report", None):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    return tracer, metrics


def _finish_obs(args, tracer, metrics) -> None:
    """Flush observability outputs and print the summary table."""
    if tracer is not None and args.trace:
        tracer.export(args.trace)
        print(f"trace written to {args.trace} "
              f"({len(tracer.finished())} spans)")
    if metrics is not None and args.metrics:
        metrics.write_summary()
        metrics.close()
        print(metrics.summary_table())
        print(f"metrics written to {args.metrics}")


def _write_run_report(args, kind, config, tracer=None, metrics=None,
                      flight=None, wall=None, slo=None) -> None:
    """Write the ``--report`` JSON + markdown pair (no-op without it)."""
    if not getattr(args, "report", None):
        return
    from repro.obs import build_run_report, write_report

    report = build_run_report(kind, config=config, tracer=tracer,
                              metrics=metrics, wall_seconds=wall, slo=slo,
                              flight=flight)
    path = write_report(report, args.report)
    print(f"run report written to {path} (+ .md)")


def _cmd_run_distributed(args) -> int:
    """``run --ranks RxSxT [--threads K]``: the hybrid distributed path.

    The serial :func:`repro.quick_simulation` setup is reused verbatim
    for the model and the initial conditions, so the distributed run
    reproduces the serial trajectory (coordinates bitwise; see
    ``tests/test_hybrid_matrix.py``).
    """
    import time as _time

    import repro
    from repro.io import format_thermo_table
    from repro.parallel import SimulationScheme, run_distributed_md
    from repro.workloads import COPPER, WATER

    for flag, name in ((args.restart, "--restart"),
                       (args.guard_tolerances, "--guard-tolerances"),
                       (args.xyz, "--xyz")):
        if flag:
            print(f"error: {name} is not supported with --ranks",
                  file=sys.stderr)
            return 2
    scheme = SimulationScheme.parse(args.ranks, threads=args.threads)
    sim = repro.quick_simulation(
        args.system, n_cells=tuple(args.cells), reps=tuple(args.cells),
        compressed=not args.baseline, interval=args.interval,
        seed=args.seed,
        layout=args.layout, kernel_chunk=args.kernel_chunk,
    )
    workload = COPPER if args.system == "copper" else WATER
    injector = _make_injector(args, n_ranks=scheme.n_ranks,
                              n_shards=scheme.threads_per_rank,
                              rebuild_every=sim.rebuild_every)
    print(f"{args.system}: {len(sim.coords)} atoms, "
          f"{'baseline' if args.baseline else 'compressed'} model, "
          f"{scheme}")
    tracer, metrics = _make_obs(args)
    from repro.obs import FlightRecorder

    # Built here (not defaulted inside run_distributed_md) so the run
    # report below can reference the same recorder.
    flight = FlightRecorder(dump_dir=args.flight_dir)
    start = _time.perf_counter()
    result = run_distributed_md(
        scheme.n_ranks, scheme.grid_dims, sim.coords, sim.types, sim.box,
        workload.masses, sim.forcefield.model, dt_fs=sim.dt_fs,
        n_steps=args.steps, rebuild_every=sim.rebuild_every,
        skin=sim.search.skin, sel=sim.search.sel,
        velocities=sim.velocities, thermo_every=args.thermo_every,
        injector=injector, threads_per_rank=scheme.threads_per_rank,
        checkpoint_dir=args.checkpoint_dir if args.checkpoint_every
        else None,
        checkpoint_every=args.checkpoint_every,
        keep_last=args.keep_last,
        max_rank_restarts=args.max_rank_restarts,
        tracer=tracer,
        metrics=metrics,
        heartbeat_timeout=args.heartbeat_timeout,
        deadline=args.deadline,
        shard_timeout=args.shard_timeout,
        write_deadline=args.write_deadline,
        flight=flight,
    )
    wall = _time.perf_counter() - start
    if injector is not None and injector.log:
        for fired in injector.log:
            print(f"injected fault: {fired}")
    for ev in result.rank_restarts:
        print(f"rank {ev.rank} failed at step {ev.step} ({ev.error}); "
              f"world restarted from shard step {ev.restart_step}")
    print(format_thermo_table(result.thermo))
    print(f"comm: {result.forward_bytes} B forward, "
          f"{result.reverse_bytes} B reverse, "
          f"{result.migrate_bytes} B migrate, "
          f"max {result.max_ghost_atoms} ghosts/rank")
    ns = args.steps * sim.dt_fs * 1e-6
    print(f"throughput: {ns / (wall / 86400.0):.3f} ns/day")
    _write_run_report(
        args, "run-distributed",
        {"system": args.system, "cells": list(args.cells),
         "steps": args.steps, "atoms": len(sim.coords),
         "model": "baseline" if args.baseline else "compressed",
         "ranks": args.ranks, "threads": args.threads,
         "seed": args.seed, "dt_fs": sim.dt_fs,
         "checkpoint_every": args.checkpoint_every,
         "chaos_profile": args.chaos_profile},
        tracer=tracer, metrics=metrics, flight=flight, wall=wall)
    _finish_obs(args, tracer, metrics)
    return 0


def _cmd_run(args) -> int:
    import repro
    from repro.io import format_thermo_table

    if args.ranks:
        return _cmd_run_distributed(args)
    tracer, metrics = _make_obs(args)
    sim = repro.quick_simulation(
        args.system, n_cells=tuple(args.cells), reps=tuple(args.cells),
        compressed=not args.baseline, interval=args.interval,
        seed=args.seed, threads=args.threads,
        tracer=tracer, metrics=metrics,
        layout=args.layout, kernel_chunk=args.kernel_chunk,
    )
    if args.restart:
        from repro.io import restart_simulation

        # The model is deterministic in --system/--seed; reuse the one
        # quick_simulation just built and restore the state on top.
        # threads=None lets the checkpoint's own thread count win when
        # the user did not ask for an explicit --threads.
        sim = restart_simulation(
            args.restart, sim.forcefield,
            threads=args.threads if args.threads != 1 else None,
            engine=sim.engine)
        if tracer is not None:
            sim.tracer = tracer
        if metrics is not None:
            sim.metrics = metrics
        print(f"restarted from {args.restart} at step {sim.step}")
    if args.flight_dir:
        sim.flight.dump_dir = args.flight_dir
    writer = None
    if args.xyz:
        from repro.io.trajectory import XYZTrajectoryWriter

        names = (["Cu"] if args.system == "copper" else ["O", "H"])
        symbols = [names[t] for t in sim.types]
        writer = XYZTrajectoryWriter(args.xyz, symbols)
        writer.write(sim.coords, sim.box, 0, sim.energy)
    print(f"{args.system}: {len(sim.coords)} atoms, "
          f"{'baseline' if args.baseline else 'compressed'} model, "
          f"{args.threads} thread{'s' if args.threads != 1 else ''}")

    if args.shard_timeout is not None and sim.engine is not None:
        sim.engine.shard_timeout = args.shard_timeout
        sim.engine.metrics = metrics
    import time as _time

    robust_run = (args.checkpoint_every or args.inject_fault
                  or args.guard_tolerances or args.chaos_profile
                  or args.escalate)
    start = _time.perf_counter()
    if robust_run:
        from repro.robust import (
            DEFAULT_LADDER,
            CheckpointManager,
            GuardTolerances,
            HealthMonitor,
            RecoveryPolicy,
            run_with_recovery,
        )

        sim.monitor = HealthMonitor(
            GuardTolerances.from_spec(args.guard_tolerances))
        injector = _make_injector(args, n_shards=args.threads,
                                  rebuild_every=sim.rebuild_every)
        if injector is not None:
            sim.attach_injector(injector)
        manager = CheckpointManager(args.checkpoint_dir,
                                    keep_last=args.keep_last,
                                    metrics=metrics,
                                    write_deadline=args.write_deadline)
        checkpoint_every = args.checkpoint_every or 10
        sim, report = run_with_recovery(
            sim, args.steps, manager=manager,
            checkpoint_every=checkpoint_every,
            thermo_every=args.thermo_every,
            policy=RecoveryPolicy(
                max_retries=args.max_retries,
                halve_dt=args.halve_dt,
                ladder=DEFAULT_LADDER if args.escalate else None),
            deadline=args.deadline,
        )
        manager.flush()
        if sim.injector is not None and sim.injector.log:
            for fired in sim.injector.log:
                print(f"injected fault: {fired}")
        for event in report.events:
            print(f"health violation at step {event.step}: {event.error}")
            print(f"  rolled back to step {event.rollback_step} "
                  f"(dt = {event.dt_fs} fs, rung = {event.rung})")
        if report.escalations:
            print(f"escalations taken: {', '.join(report.escalations)}")
        print(f"completed step {report.final_step} with "
              f"{report.retries} rollback(s); checkpoints in "
              f"{args.checkpoint_dir}")
    else:
        sim.run(args.steps, thermo_every=args.thermo_every,
                deadline=args.deadline)
    if writer is not None:
        writer.write(sim.coords, sim.box, sim.step, sim.energy)
        writer.close()
        print(f"trajectory written to {args.xyz}")
    print(format_thermo_table(sim.thermo_log))
    print(f"throughput: {sim.ns_per_day():.3f} ns/day")
    _write_run_report(
        args, "run",
        {"system": args.system, "cells": list(args.cells),
         "steps": args.steps, "atoms": len(sim.coords),
         "model": "baseline" if args.baseline else "compressed",
         "threads": args.threads, "seed": args.seed,
         "dt_fs": sim.dt_fs, "layout": args.layout,
         "checkpoint_every": args.checkpoint_every,
         "chaos_profile": args.chaos_profile},
        tracer=tracer, metrics=metrics, flight=sim.flight,
        wall=_time.perf_counter() - start)
    _finish_obs(args, tracer, metrics)
    return 0


def _cmd_compress(args) -> int:
    from repro.core import CompressedDPModel, DPModel
    from repro.io import save_compressed
    from repro.workloads import COPPER, WATER

    w = COPPER if args.system == "copper" else WATER
    spec = w.model_spec(d1=args.d1, m_sub=max(2, args.d1 // 2),
                        fit_width=4 * args.d1)
    model = DPModel(spec)
    comp = CompressedDPModel.compress(model, interval=args.interval)
    save_compressed(args.out, comp)
    print(f"compressed {args.system} model (d1={args.d1}, interval "
          f"{args.interval}) -> {args.out} "
          f"({comp.table_bytes / 1e6:.1f} MB of tables)")
    return 0


def _cmd_project(args) -> int:
    from repro.analysis import render_table
    from repro.core import Stage
    from repro.perf import (
        FUGAKU,
        SUMMIT,
        MemoryModel,
        V100,
        speedup_ladder,
        strong_scaling,
        table2_rows,
        weak_scaling,
    )
    from repro.workloads import COPPER, WATER

    machine = SUMMIT if args.machine == "Summit" else FUGAKU
    w = COPPER if args.system == "copper" else WATER

    if args.experiment == "strong":
        sizes = {"copper": {"Summit": 13_500_000, "Fugaku": 2_177_280},
                 "water": {"Summit": 41_472_000, "Fugaku": 8_294_400}}
        pts = strong_scaling(machine, w, sizes[w.name][machine.name],
                             [20, 57, 114, 285, 570, 1140, 2280, 4560])
        print(render_table(
            ["nodes", "ms/step", "eff %", "ns/day"],
            [[p.nodes, f"{p.step_seconds * 1e3:.2f}",
              f"{p.efficiency * 100:.1f}", f"{p.ns_per_day:.2f}"]
             for p in pts],
            title=f"strong scaling, {w.name} on {machine.name}"))
    elif args.experiment == "weak":
        per_task = 122_779 if machine.name == "Summit" else 6_804
        pts = weak_scaling(machine, w, per_task,
                           [machine.n_nodes // 256, machine.n_nodes // 16,
                            machine.n_nodes])
        print(render_table(
            ["nodes", "atoms", "s/step", "PFLOPS"],
            [[p.nodes, f"{p.atoms:.3g}", f"{p.step_seconds:.3f}",
              f"{p.pflops:.1f}"] for p in pts],
            title=f"weak scaling, {w.name} on {machine.name}"))
    elif args.experiment == "ladder":
        lad = speedup_ladder(machine.device, w)
        print(render_table(
            ["stage", "cumulative speedup"],
            [[s.value, f"{lad[s]:.2f}"] for s in Stage.ordered()],
            title=f"optimization ladder, {w.name} on {machine.device.name}"))
    elif args.experiment == "table2":
        print(render_table(
            ["machine", "system", "TtS us", "xPeak", "xPower"],
            [[r.machine, r.system, f"{r.tts_us:.2f}",
              f"{r.tts_x_peak:.1f}", f"{r.tts_x_power:.0f}"]
             for r in table2_rows([WATER, COPPER])],
            title="Table 2 — normalized single-device comparison"))
    elif args.experiment == "capacity":
        mm = MemoryModel(w, V100)
        print(f"V100 {w.name}: capacity gain {mm.capacity_gain():.1f}x, "
              f"baseline G share {mm.g_matrix_share() * 100:.0f}%")
    elif args.experiment == "validate":
        from repro.perf.validate import main as validate_main

        return validate_main()
    return 0


def _cmd_serve(args) -> int:
    """``serve``: synthetic mixed-traffic demo of the evaluation service.

    Builds one compressed model, spreads --jobs jittered single-point
    evaluations (plus optional MD segments) over --clients lanes,
    drains the queue, and prints the service's own metrics — queue
    depth, batch occupancy, p50/p99 latency.  With --chaos-profile the
    job sequence runs under an armed fault storm (slow-job/flaky-job).
    """
    import numpy as np

    from repro.core import CompressedDPModel, DPModel
    from repro.md import copper_system, water_system
    from repro.obs import MetricsRegistry
    from repro.serve import EvalJob, EvalService, MDJob
    from repro.workloads import COPPER, WATER

    w = COPPER if args.system == "copper" else WATER
    spec = w.model_spec(d1=8, m_sub=4, fit_width=32, seed=args.seed)
    model = CompressedDPModel.compress(DPModel(spec),
                                       interval=args.interval)
    if args.system == "copper":
        coords, types, box = copper_system(tuple(args.cells))
    else:
        coords, types, box = water_system(tuple(args.cells),
                                          seed=args.seed)
    engine = None
    if args.threads > 1:
        from repro.parallel import ThreadedEngine

        engine = ThreadedEngine(args.threads)
    injector = None
    if args.chaos_profile:
        from repro.robust import ChaosSchedule

        seed = args.chaos_seed if args.chaos_seed is not None else args.seed
        schedule = ChaosSchedule(args.jobs, seed=seed,
                                 profile=args.chaos_profile)
        print(schedule.describe())
        injector = schedule.injector()
    metrics = MetricsRegistry(sink=args.metrics) if args.metrics else None
    tracer = None
    if args.trace or args.report:
        from repro.obs import Tracer

        tracer = Tracer()
    service = EvalService(model, capacity=args.capacity,
                          max_batch=args.max_batch, engine=engine,
                          metrics=metrics,
                          default_deadline=args.deadline,
                          injector=injector, tracer=tracer)
    rng = np.random.default_rng(args.seed)
    masses = np.asarray(w.masses)
    tickets = []
    for i in range(args.jobs):
        jitter = rng.normal(0.0, 0.05, coords.shape)
        if args.md_every and (i + 1) % args.md_every == 0:
            job = MDJob(coords + jitter, types, box, masses,
                        n_steps=5, seed=args.seed + i)
        else:
            job = EvalJob(coords + jitter, types, box)
        tickets.append(service.submit(job,
                                      client=f"client{i % args.clients}"))
    print(f"{args.system}: {len(coords)} atoms/job, {args.jobs} jobs "
          f"over {args.clients} clients, max_batch={args.max_batch}, "
          f"threads={args.threads}")
    import time as _time

    start = _time.perf_counter()
    rounds = service.drain()
    wall = _time.perf_counter() - start
    by_status: dict[str, int] = {}
    for t in tickets:
        by_status[t.status] = by_status.get(t.status, 0) + 1
        if t.failure is not None:
            print(f"  job {t.job_id} [{t.status}] "
                  f"{t.failure.phase}: {t.failure.error}")
    snap = service.stats()
    occ = snap["histograms"].get("serve_batch_occupancy", {})
    lat = snap["histograms"].get("serve_latency_seconds", {})
    print(f"drained in {rounds} rounds: " +
          ", ".join(f"{k}={v}" for k, v in sorted(by_status.items())))
    if occ.get("count"):
        print(f"batch occupancy: mean {occ['mean']:.2f} "
              f"max {occ['max']:.0f} over {occ['count']} dispatches")
    if lat.get("count"):
        print(f"latency: p50 {lat['p50'] * 1e3:.2f} ms, "
              f"p99 {lat['p99'] * 1e3:.2f} ms")
    if tracer is not None and args.trace:
        tracer.export(args.trace)
        print(f"trace written to {args.trace} "
              f"({len(tracer.finished())} spans)")
    if args.report:
        slo = {
            "jobs": args.jobs,
            "drain_rounds": rounds,
            "by_status": dict(sorted(by_status.items())),
            "batch_occupancy_mean": occ.get("mean"),
            "batch_occupancy_max": occ.get("max"),
            "latency_p50_s": lat.get("p50"),
            "latency_p99_s": lat.get("p99"),
        }
        _write_run_report(
            args, "serve",
            {"system": args.system, "cells": list(args.cells),
             "jobs": args.jobs, "clients": args.clients,
             "max_batch": args.max_batch, "threads": args.threads,
             "capacity": args.capacity, "seed": args.seed,
             "md_every": args.md_every,
             "chaos_profile": args.chaos_profile},
            tracer=tracer, metrics=snap, flight=service.flight,
            wall=wall, slo=slo)
    if metrics is not None:
        metrics.write_summary()
        metrics.close()
        print(f"metrics written to {args.metrics}")
    if engine is not None:
        engine.close()
    failed = by_status.get("failed", 0) + by_status.get("timed-out", 0)
    return 1 if (failed and not args.chaos_profile) else 0


def _cmd_info(_args) -> int:
    import repro

    print(f"repro {repro.__version__} — PPoPP'22 DeePMD-kit reproduction")
    print(__doc__)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return {
        "run": _cmd_run,
        "compress": _cmd_compress,
        "project": _cmd_project,
        "serve": _cmd_serve,
        "info": _cmd_info,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
