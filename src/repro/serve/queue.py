"""Bounded request queue with per-client round-robin fairness.

The serving layer's admission control: every client owns a FIFO lane,
lanes are drained round-robin, and total depth is capped — a full queue
*rejects* new work (:class:`QueueFullError`, the backpressure signal a
client can retry on) instead of growing without bound.

Fairness here is the scheduling-theory kind, not a vague promise: a
client's next item is served after at most one item from every other
client with pending work (round-robin over lanes in first-arrival
order).  An adversarial client flooding the queue fills *its own lane*
— it can exhaust the shared capacity (that is what backpressure is
for) but never reorder another client's items or starve them once
admitted.  The property suite in ``tests/test_serve_queue.py`` pins
both guarantees.

The queue is deterministic and clock-free: pop order is a pure
function of the push sequence.  It is also lock-free by design — the
scheduler (:class:`repro.serve.service.EvalService`) is the only
consumer, and it serializes queue access on its own dispatch thread.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

__all__ = ["FairQueue", "QueueFullError"]


class QueueFullError(RuntimeError):
    """Backpressure: the queue is at capacity, the job was rejected."""

    def __init__(self, client: str, depth: int, capacity: int):
        super().__init__(
            f"queue full ({depth}/{capacity}); job from client "
            f"{client!r} rejected — retry after the backlog drains")
        self.client = client
        self.depth = depth
        self.capacity = capacity


class FairQueue:
    """Bounded multi-client queue, drained round-robin across clients.

    Parameters
    ----------
    capacity:
        Maximum total queued items across all clients; ``None`` means
        unbounded.  :meth:`push` raises :class:`QueueFullError` at the
        cap — admission control is the *caller's* signal, the queue
        never blocks.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and int(capacity) < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = None if capacity is None else int(capacity)
        self._lanes: dict[str, deque] = {}
        #: Round-robin ring: clients with pending items, in service
        #: order.  The front client is served next; after a pop it
        #: moves to the back (or leaves the ring when drained).
        self._ring: deque[str] = deque()
        self._depth = 0

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return self._depth

    def __bool__(self) -> bool:
        return self._depth > 0

    @property
    def depth(self) -> int:
        return self._depth

    def clients(self) -> list[str]:
        """Clients with pending items, in current round-robin order."""
        return list(self._ring)

    def lane_depth(self, client: str) -> int:
        lane = self._lanes.get(client)
        return len(lane) if lane else 0

    # -------------------------------------------------------------- mutation
    def push(self, client: str, item: Any) -> None:
        """Enqueue ``item`` on ``client``'s lane.

        Raises :class:`QueueFullError` at capacity (backpressure); the
        item is *not* admitted.
        """
        if self.capacity is not None and self._depth >= self.capacity:
            raise QueueFullError(client, self._depth, self.capacity)
        lane = self._lanes.get(client)
        if lane is None:
            lane = self._lanes[client] = deque()
        if not lane:
            self._ring.append(client)
        lane.append(item)
        self._depth += 1

    def pop(self) -> tuple[str, Any]:
        """Dequeue the next item in round-robin fairness order.

        Returns ``(client, item)``; raises :class:`IndexError` on an
        empty queue.  The served client rotates to the back of the
        ring, so K clients with pending work each get every K-th slot.
        """
        if not self._ring:
            raise IndexError("pop from an empty FairQueue")
        client = self._ring.popleft()
        lane = self._lanes[client]
        item = lane.popleft()
        self._depth -= 1
        if lane:
            self._ring.append(client)
        return client, item

    def take_matching(self, pred: Callable[[Any], bool],
                      limit: int) -> list[tuple[str, Any]]:
        """Remove up to ``limit`` items satisfying ``pred``, scanning in
        fairness order (ring order, FIFO within each lane).

        This is the batch-packing hook: after :meth:`pop` fixes the
        round's batch key, the scheduler collects that key's shape-mates
        across all lanes.  Taking a later same-key item ahead of a
        client's earlier other-key items is deliberate — it delays no
        other item (the batch occupies one dispatch slot) and raises
        occupancy.  The ring is not rotated: only :meth:`pop` advances
        the fairness cursor.
        """
        if limit <= 0:
            return []
        taken: list[tuple[str, Any]] = []
        for client in list(self._ring):
            lane = self._lanes[client]
            kept = deque()
            while lane:
                item = lane.popleft()
                if len(taken) < limit and pred(item):
                    taken.append((client, item))
                    self._depth -= 1
                else:
                    kept.append(item)
            self._lanes[client] = kept
            if not kept:
                self._ring.remove(client)
            if len(taken) >= limit:
                break
        return taken

    def drain_lane(self, client: str) -> list[Any]:
        """Remove and return every pending item of one client."""
        lane = self._lanes.get(client)
        if not lane:
            return []
        items = list(lane)
        lane.clear()
        self._depth -= len(items)
        if client in self._ring:
            self._ring.remove(client)
        return items
