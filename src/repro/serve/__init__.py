"""Batched evaluation service (PR 8).

The serving layer the paper's surrounding workflows (DP-GEN active
learning, committee sampling, property scans) need: clients submit
single-point evaluations, short MD segments, and committee queries;
the service admits them through a bounded fair queue, packs
same-shaped requests into one fused batched evaluation per backend —
with per-member results **bitwise identical** to sequential
single-point evaluation — and spreads batches over a shared thread
pool.  See DESIGN.md Sec. 11.
"""

from .batch import (PackedBatch, evaluate_batch, pack_neighbors,
                    supports_batching)
from .jobs import (DONE, FAILED, PENDING, TERMINAL_STATES, TIMED_OUT,
                   CommitteeJob, EvalJob, EvalOutput, JobFailure, MDJob,
                   MDOutput, TaskJob, Ticket)
from .queue import FairQueue, QueueFullError
from .service import EvalService

__all__ = [
    "EvalService",
    "FairQueue", "QueueFullError",
    "EvalJob", "MDJob", "CommitteeJob", "TaskJob",
    "EvalOutput", "MDOutput", "JobFailure", "Ticket",
    "PackedBatch", "pack_neighbors", "evaluate_batch", "supports_batching",
    "PENDING", "DONE", "FAILED", "TIMED_OUT", "TERMINAL_STATES",
]
