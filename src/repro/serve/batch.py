"""Batch packing: concatenate same-shaped requests into one fused pass.

The 86-PFLOPS DPMD work (Lu et al., 2020) gets its hardware headroom
from running *one big GEMM* instead of many small ones.  The packed
(CSR) layout makes that trivial for this codebase: B independent
systems evaluated against the same model are, after index offsetting,
indistinguishable from one system with B connected components — no
padding waste, one fused forward/backward over the concatenated pair
list, one table lookup stream, one force scatter.

Bitwise contract (the serving layer's headline invariant): for every
member, the batched result equals standalone evaluation **bit for
bit**, per dtype.  The pair-domain stages are concatenation-invariant
because :func:`repro.core.fused.segment_reduce` never sums across an
atom segment and every per-pair operation is elementwise; the one
stage that is *not* row-count invariant — the fitting-net BLAS GEMMs,
whose k-blocking changes with the row count — runs per member inside
:meth:`repro.core.compressed.CompressedDPModel.evaluate_packed` when
``splits=`` is given (see DESIGN.md Sec. 11 for the argument, and
``tests/test_serve_batch.py`` for the {f64, f32} x {aos, soa} x
{1, 2 threads} pin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.backend import EvalRequest, ForceBackend
from .jobs import EvalOutput

__all__ = ["PackedBatch", "pack_neighbors", "evaluate_batch",
           "supports_batching"]


def supports_batching(backend: ForceBackend) -> bool:
    """True when ``backend`` can serve a concatenated (splits) request."""
    return bool(getattr(backend.model, "supports_splits", False))


@dataclass
class PackedBatch:
    """B member systems concatenated into one packed evaluation."""

    request: EvalRequest            #: the concatenated request
    #: Per-member ``(atom_lo, atom_hi)`` ranges into ``centers`` rows.
    splits: list
    #: Per-member ``(ext_lo, ext_hi)`` ranges into the extended
    #: (local + ghost) coordinate rows — the force slices.
    ext_ranges: list
    #: The member neighbor structures (ghost folding happens per member).
    members: list

    def __len__(self) -> int:
        return len(self.members)


def pack_neighbors(neighbors, *, precision=None,
                   chunk: int | None = None) -> PackedBatch:
    """Concatenate built neighbor structures into one packed request.

    Every member's CSR arrays are offset into a shared index space:
    ``indices``/``centers`` by the running extended-row count,
    ``indptr`` by the running pair count, ``pair_atom`` by the running
    local-atom count.  Atom segments never straddle members, which is
    what makes the fused pass bitwise concatenation-invariant.
    """
    neighbors = list(neighbors)
    if not neighbors:
        raise ValueError("cannot pack an empty batch")
    ext_off = pair_off = loc_off = 0
    coords, types, centers, indices, pair_atom = [], [], [], [], []
    indptr = [np.zeros(1, dtype=np.intp)]
    splits, ext_ranges = [], []
    for nd in neighbors:
        coords.append(nd.ext_coords)
        types.append(nd.ext_types)
        centers.append(nd.centers + ext_off)
        indices.append(nd.indices + ext_off)
        indptr.append(np.asarray(nd.indptr[1:], dtype=np.intp) + pair_off)
        # nd.pair_atom maps pairs to *local row* indices; offset by the
        # running local count, not the extended count.
        pair_atom.append(np.asarray(nd.pair_atom, dtype=np.intp) + loc_off)
        splits.append((loc_off, loc_off + nd.n_local))
        ext_ranges.append((ext_off, ext_off + len(nd.ext_coords)))
        ext_off += len(nd.ext_coords)
        pair_off += len(nd.indices)
        loc_off += nd.n_local
    request = EvalRequest(
        coords=np.concatenate(coords),
        types=np.concatenate(types),
        centers=np.concatenate(centers),
        indices=np.concatenate(indices),
        indptr=np.concatenate(indptr),
        pair_atom=np.concatenate(pair_atom),
        precision=None if precision is None else np.dtype(precision),
        chunk=chunk,
        splits=splits,
    )
    return PackedBatch(request=request, splits=splits,
                       ext_ranges=ext_ranges, members=neighbors)


def evaluate_batch(backend: ForceBackend,
                   batch: PackedBatch) -> list[EvalOutput]:
    """One fused evaluation of the whole batch, split back per member.

    Per-member energies and virials come from the model's
    ``extras["splits"]`` (computed over exactly the member's atom/pair
    slices); forces are sliced by extended-row range and ghost-folded
    through the member's own neighbor structure — the identical fold a
    standalone evaluation performs.
    """
    result = backend.evaluate(batch.request)
    per_member = result.extras.get("splits")
    if per_member is None or len(per_member) != len(batch):
        raise RuntimeError(
            f"backend {backend.name!r} returned no per-member results "
            f"for a {len(batch)}-member batch")
    outputs = []
    for nd, (lo, hi), (elo, ehi), scalars in zip(
            batch.members, batch.splits, batch.ext_ranges, per_member):
        outputs.append(EvalOutput(
            energy=scalars["energy"],
            forces=nd.fold_forces(result.forces[elo:ehi]),
            virial=scalars["virial"],
            atomic_energies=result.atomic_energies[lo:hi],
        ))
    return outputs
