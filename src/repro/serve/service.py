"""The batched evaluation service: queue -> scheduler -> worker pool.

:class:`EvalService` is the serving loop the DP-GEN-style workflows in
the paper's ecosystem sit on top of: many clients (active-learning
drivers, committee samplers, analysis notebooks) submit single-point
evaluations, short MD segments, and committee queries against shared
models; the service admits them through a bounded
:class:`~repro.serve.queue.FairQueue` (backpressure + per-client
round-robin fairness), packs same-shaped evaluation requests into one
batched fused pass per backend (:mod:`repro.serve.batch`), and runs
batches on a shared :class:`~repro.parallel.engine.ThreadedEngine`.

Design invariants, each pinned by ``tests/test_serve_*``:

* **Determinism** — the scheduler is single-threaded and clock-free at
  its core: pop order is a pure function of the submit sequence, and
  every timestamp comes from the injectable ``clock``.  Tests drive
  the whole lifecycle — deadlines, backoff, latency histograms — with
  a fake clock and never call ``time.sleep``.
* **Bitwise results** — a batched evaluation returns, per member,
  exactly the bits sequential evaluation would (the ``splits=``
  contract of :meth:`~repro.core.compressed.CompressedDPModel.
  evaluate_packed`).  Parallelism is *across* batches: each batch is
  evaluated with serial kernels, batches are distributed over the
  engine pool as pure functions, results are applied on the scheduler
  thread.
* **No head-of-line blocking** — queued jobs whose deadline expires
  are swept out *before* the round's dispatch, each with a structured
  :class:`~repro.serve.jobs.JobFailure`, so one doomed job never
  delays the jobs behind it.
* **Bounded failure** — a failing job burns ``max_retries`` attempts
  with :class:`~repro.robust.deadline.RetryPolicy` backoff (enforced
  via ``not_before``, not by sleeping the queue), then lands in
  ``failed`` with a full report.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.backend import EvalRequest, backend_for
from ..md.neighbor import NeighborSearch
from ..obs.flight import ensure_flight
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER
from ..robust.deadline import Deadline, RetryPolicy
from .batch import evaluate_batch, pack_neighbors, supports_batching
from .jobs import (DONE, FAILED, PENDING, TIMED_OUT, EvalOutput, JobFailure,
                   MDOutput, Ticket)
from .queue import FairQueue, QueueFullError

__all__ = ["EvalService"]


class EvalService:
    """Batched, fair, deadline-aware evaluation service.

    Parameters
    ----------
    model:
        Convenience: registered under the name ``"default"``.
    models:
        Mapping of name -> model; each model's
        :class:`~repro.core.backend.ForceBackend` is resolved once at
        registration, and a :class:`~repro.md.neighbor.NeighborSearch`
        is cached per model.
    committees:
        Mapping of name -> :class:`~repro.core.committee.ModelCommittee`
        for :class:`~repro.serve.jobs.CommitteeJob` queries.
    capacity:
        Queue bound; :meth:`submit` raises
        :class:`~repro.serve.queue.QueueFullError` past it.
    max_batch:
        Most same-keyed jobs packed into one dispatch round.
    engine:
        Optional :class:`~repro.parallel.engine.ThreadedEngine`;
        batches within a round are distributed over its pool (each
        evaluated with serial kernels, preserving bitwise results).
    clock, sleep:
        Injectable time sources (tests use a fake clock; the scheduler
        itself never reads the wall clock directly).
    metrics:
        Optional shared :class:`~repro.obs.MetricsRegistry`; a private
        one is created otherwise.  The service records
        ``serve_queue_depth`` (gauge), ``serve_batch_occupancy`` and
        ``serve_latency_seconds`` (histograms — p50/p99 via the
        deterministic reservoir), and counters for
        submitted/served/rejected/retries/timeouts/failures.
    default_deadline:
        Per-job budget in seconds applied when :meth:`submit` gets no
        explicit deadline (``None`` = unlimited).
    retry, max_retries:
        Failure policy: a job may burn ``max_retries`` *retry* attempts
        (so ``max_retries + 1`` executions total) with
        :class:`~repro.robust.deadline.RetryPolicy` backoff between
        them.
    injector:
        Optional :class:`~repro.robust.faults.FaultInjector`; the
        ``slow-job`` / ``flaky-job`` kinds key on the job sequence
        number.
    skin:
        Verlet skin for the per-model neighbor builders (single-point
        services have no motion to buffer, so it defaults small).
    tracer:
        Optional :class:`~repro.obs.Tracer`; the scheduler records
        ``serve_queue_wait`` (back-dated, measured on the service
        clock), ``serve_batch_pack`` / ``serve_packed_eval`` spans per
        batch group, and ``serve_retry`` instants, so serve runs render
        in Perfetto like every other layer.
    flight:
        The always-on :class:`~repro.obs.FlightRecorder` (``None``
        creates one, ``False`` disables); job retries, failures, and
        timeouts land in the black box.
    """

    def __init__(self, model=None, *, models=None, committees=None,
                 capacity: int | None = 256, max_batch: int = 8,
                 engine=None, clock=time.monotonic, sleep=time.sleep,
                 metrics=None, default_deadline: float | None = None,
                 retry: RetryPolicy | None = None, max_retries: int = 2,
                 injector=None, skin: float = 1.0, tracer=None,
                 flight=None):
        if int(max_batch) < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = int(max_batch)
        self.engine = engine
        self._clock = clock
        self._sleep = sleep
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.flight = ensure_flight(flight)
        if self.flight is not None and self.flight.metrics is None:
            self.flight.metrics = self.metrics
        self.default_deadline = default_deadline
        self.retry = retry
        self.max_retries = int(max_retries)
        self.injector = injector
        self.skin = float(skin)
        self.queue = FairQueue(capacity)
        self._models: dict[str, object] = {}
        self._backends: dict[str, object] = {}
        self._searchers: dict[str, NeighborSearch] = {}
        self._committees: dict[str, object] = {}
        self._seq = 0
        self.tickets: dict[int, Ticket] = {}
        #: Retried tickets waiting out their backoff (``not_before``).
        self._backoff: list[Ticket] = []
        if model is not None:
            self.register_model("default", model)
        for name, m in (models or {}).items():
            self.register_model(name, m)
        for name, c in (committees or {}).items():
            self.register_committee(name, c)

    @classmethod
    def from_config(cls, model, config, *, metrics=None, injector=None,
                    tracer=None, **kwargs):
        """Build a service from a resolved :class:`repro.config.RunConfig`.

        Maps the config spine onto the service surface: the ``serve``
        section sizes the queue (``capacity``/``max_batch``),
        ``robust.deadline`` becomes the per-job default budget, and
        ``parallel.threads > 1`` builds a
        :class:`~repro.parallel.engine.ThreadedEngine` (with
        ``robust.shard_timeout`` applied when set).  Further keyword
        arguments pass through to the constructor.
        """
        engine = None
        if config.parallel.threads > 1:
            from ..parallel import ThreadedEngine

            engine = ThreadedEngine(config.parallel.threads)
            if config.robust.shard_timeout is not None:
                engine.shard_timeout = config.robust.shard_timeout
        return cls(model,
                   capacity=config.serve.capacity,
                   max_batch=config.serve.max_batch,
                   engine=engine,
                   metrics=metrics,
                   default_deadline=config.robust.deadline,
                   injector=injector,
                   tracer=tracer,
                   **kwargs)

    # ---------------------------------------------------------- registration
    def register_model(self, name: str, model) -> None:
        """Register ``model`` under ``name``; resolves its backend and
        neighbor builder once, so dispatch is lookup-only."""
        spec = model.spec
        self._models[name] = model
        self._backends[name] = backend_for(model)
        self._searchers[name] = NeighborSearch(spec.rcut, self.skin,
                                               sel=spec.sel)

    def register_committee(self, name: str, committee) -> None:
        self._committees[name] = committee
        spec = committee.spec
        # Committee queries share the per-model builder namespace under
        # a reserved prefix (a committee is not an eval target).
        self._searchers[f"committee:{name}"] = NeighborSearch(
            spec.rcut, self.skin, sel=spec.sel)

    # --------------------------------------------------------------- submit
    def submit(self, job, client: str = "default",
               deadline: float | Deadline | None = None) -> Ticket:
        """Admit ``job`` into ``client``'s lane; returns its ticket.

        Raises :class:`QueueFullError` (backpressure) at capacity — the
        job is *not* admitted and no ticket is issued.  ``deadline``
        (seconds, or a prebuilt :class:`Deadline`) is anchored at
        submit time on the service clock and covers queueing *and*
        execution.
        """
        kind = getattr(job, "kind", None)
        if kind == "eval" or kind == "md":
            if job.model not in self._models:
                raise ValueError(f"unknown model {job.model!r}; registered: "
                                 f"{sorted(self._models)}")
        elif kind == "committee":
            if job.committee not in self._committees:
                raise ValueError(
                    f"unknown committee {job.committee!r}; registered: "
                    f"{sorted(self._committees)}")
        elif kind != "task":
            raise TypeError(f"unsupported job type {type(job).__name__!r}")
        if deadline is None:
            deadline = self.default_deadline
        if deadline is not None and not isinstance(deadline, Deadline):
            deadline = Deadline(float(deadline), clock=self._clock)
        self._seq += 1
        ticket = Ticket(job_id=self._seq, client=client, job=job,
                        submitted_at=self._clock(), deadline=deadline)
        try:
            self.queue.push(client, ticket)
        except QueueFullError:
            self.metrics.inc("serve_rejected")
            self._seq -= 1
            raise
        self.tickets[ticket.job_id] = ticket
        self.metrics.inc("serve_submitted")
        self.metrics.gauge("serve_queue_depth").set(self.queue.depth)
        return ticket

    # ------------------------------------------------------------ batch keys
    def _batch_key(self, ticket: Ticket):
        """Jobs sharing a key are packed into one dispatch round.

        Evaluations batch per (model, precision) when the backend
        supports the bitwise ``splits=`` contract; task jobs batch per
        tag (occupancy accounting — the callables still run one by
        one); everything else is a singleton round.
        """
        job = ticket.job
        kind = getattr(job, "kind", None)
        if kind == "eval" and supports_batching(self._backends[job.model]):
            prec = "f64" if job.precision is None \
                else np.dtype(job.precision).name
            return ("eval", job.model, prec)
        if kind == "task":
            return ("task", job.tag)
        return (kind or "?", ticket.job_id)

    # -------------------------------------------------------------- the loop
    def run_once(self) -> list[Ticket]:
        """One scheduler round; returns the tickets that went terminal.

        Order of operations (each step matters for the invariants):
        re-admit backoff tickets whose ``not_before`` has passed
        (sleeping to the earliest one only when the queue is otherwise
        idle); sweep expired *queued* deadlines out as structured
        timeouts (no head-of-line blocking); pop the round's head in
        fairness order; collect its shape-mates up to ``max_batch``;
        dispatch.
        """
        finished: list[Ticket] = []
        self._readmit_backoff(wait_if_idle=True)
        finished.extend(self._expire_queued())
        if not self.queue:
            self.metrics.gauge("serve_queue_depth").set(self.queue.depth)
            return finished
        _, head = self.queue.pop()
        key = self._batch_key(head)
        mates = self.queue.take_matching(
            lambda t: self._batch_key(t) == key, self.max_batch - 1)
        batch = [head] + [t for _, t in mates]
        self.metrics.gauge("serve_queue_depth").set(self.queue.depth)
        finished.extend(self._dispatch(key, batch))
        return finished

    def drain(self, max_rounds: int | None = None) -> int:
        """Run rounds until queue and backoff are empty; returns the
        round count.  ``max_rounds`` bounds a misbehaving workload."""
        rounds = 0
        while self.queue or self._backoff:
            if max_rounds is not None and rounds >= max_rounds:
                break
            self.run_once()
            rounds += 1
        return rounds

    def stats(self) -> dict:
        """Metrics snapshot with deterministic p50/p99 latency."""
        return self.metrics.snapshot(quantiles=True)

    # ----------------------------------------------------------- round parts
    def _readmit_backoff(self, wait_if_idle: bool) -> None:
        now = self._clock()
        if wait_if_idle and not self.queue and self._backoff:
            earliest = min(t.not_before for t in self._backoff)
            if earliest > now:
                # Nothing else to serve: sleep (injectable) to the
                # first retry slot instead of spinning.
                self._sleep(earliest - now)
                now = self._clock()
        ready = [t for t in self._backoff if t.not_before <= now]
        if not ready:
            return
        self._backoff = [t for t in self._backoff if t.not_before > now]
        # Retries re-enter their own lane but bypass the admission cap:
        # the job was already admitted once, and bouncing a retry off a
        # momentarily full queue would turn backpressure into job loss.
        cap, self.queue.capacity = self.queue.capacity, None
        try:
            for t in sorted(ready, key=lambda t: t.job_id):
                self.queue.push(t.client, t)
        finally:
            self.queue.capacity = cap

    def _expire_queued(self) -> list[Ticket]:
        """Sweep queued tickets whose deadline already expired."""
        if not self.queue:
            return []
        expired = self.queue.take_matching(
            lambda t: t.deadline is not None and t.deadline.expired(),
            self.queue.depth)
        out = []
        for _, t in expired:
            self._fail(t, TIMED_OUT, phase="queued",
                       error=f"deadline of {t.deadline.seconds:g}s expired "
                             f"before dispatch")
            out.append(t)
        return out

    def _dispatch(self, key, batch: list[Ticket]) -> list[Ticket]:
        live: list[Ticket] = []
        finished: list[Ticket] = []
        if self.tracer:
            # Queue wait is measured on the (possibly fake) service
            # clock, so it is recorded back-dated rather than spanned.
            now = self._clock()
            for t in batch:
                self.tracer.complete("serve_queue_wait",
                                     now - t.submitted_at,
                                     job=t.job_id, client=t.client)
        for t in sorted(batch, key=lambda t: t.job_id):
            if self.injector is not None:
                delay = self.injector.job_delay(t.job_id)
                if delay:
                    self._sleep(delay)
            t.attempts += 1
            if self.injector is not None:
                try:
                    self.injector.job_fault(t.job_id)
                except Exception as exc:
                    finished.extend(self._retry_or_fail(t, exc))
                    continue
            live.append(t)
        if live:
            self.metrics.observe("serve_batch_occupancy", len(live))
        if key[0] == "eval" and len(key) == 3 and live:
            finished.extend(self._run_eval_batches(live))
        else:
            for t in live:
                try:
                    result = self._execute_one(t)
                except Exception as exc:
                    finished.extend(self._retry_or_fail(t, exc))
                else:
                    finished.extend(self._finish(t, result))
        return finished

    # ------------------------------------------------------------- execution
    def _neighbors_for(self, t: Ticket):
        if t._neighbors is None:
            job = t.job
            searcher = self._searchers[
                f"committee:{job.committee}" if job.kind == "committee"
                else job.model]
            t._neighbors = searcher.build(job.coords, job.types, job.box)
        return t._neighbors

    def _run_eval_batches(self, live: list[Ticket]) -> list[Ticket]:
        """Evaluate same-keyed eval jobs as packed batches.

        With a multi-thread engine the round's jobs are split into up
        to ``n_threads`` contiguous sub-batches evaluated concurrently;
        each sub-batch runs serial kernels, so every member's bits
        match sequential evaluation regardless of the thread count.
        """
        for t in live:
            self._neighbors_for(t)
        backend = self._backends[live[0].job.model]
        precision = live[0].job.precision
        n_groups = 1
        if self.engine is not None and self.engine.n_threads > 1:
            n_groups = min(self.engine.n_threads, len(live))
        bounds = np.linspace(0, len(live), n_groups + 1).astype(int)
        groups = [live[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])
                  if hi > lo]

        tracer = self.tracer

        def run_group(group):
            with tracer.span("serve_batch_pack", jobs=len(group)):
                packed = pack_neighbors((t._neighbors for t in group),
                                        precision=precision)
            with tracer.span("serve_packed_eval", jobs=len(group),
                             backend=backend.name):
                return evaluate_batch(backend, packed)

        finished: list[Ticket] = []
        try:
            if self.engine is not None and len(groups) > 1:
                outputs = self.engine.map(run_group, groups,
                                          trace_name="serve_batch")
            else:
                outputs = [run_group(g) for g in groups]
        except Exception as exc:
            for t in live:
                finished.extend(self._retry_or_fail(t, exc))
            return finished
        for group, outs in zip(groups, outputs):
            for t, out in zip(group, outs):
                finished.extend(self._finish(t, out))
        return finished

    def _execute_one(self, t: Ticket):
        job = t.job
        kind = job.kind
        if kind == "task":
            return job.fn()
        if kind == "eval":
            # Solo path: backend without the splits contract (e.g. the
            # padded fallback) — still the exact sequential evaluation.
            nd = self._neighbors_for(t)
            request = EvalRequest.from_neighbors(
                nd, precision=job.precision)
            result = self._backends[job.model].evaluate(request)
            return EvalOutput(energy=result.energy,
                              forces=nd.fold_forces(result.forces),
                              virial=result.virial,
                              atomic_energies=result.atomic_energies)
        if kind == "md":
            from ..md.simulation import DPForceField, Simulation

            sim = Simulation(job.coords, job.types, job.box, job.masses,
                             DPForceField(self._models[job.model]),
                             dt_fs=job.dt_fs, temperature=job.temperature,
                             seed=job.seed)
            sim.run(job.n_steps, thermo_every=0)
            return MDOutput(coords=sim.coords.copy(),
                            velocities=sim.velocities.copy(),
                            energy=float(sim.energy), n_steps=job.n_steps)
        if kind == "committee":
            nd = self._neighbors_for(t)
            return self._committees[job.committee].deviation(nd)
        raise TypeError(f"unsupported job kind {kind!r}")

    # ------------------------------------------------------------- lifecycle
    def _finish(self, t: Ticket, result) -> list[Ticket]:
        if t.deadline is not None and t.deadline.expired():
            self._fail(t, TIMED_OUT, phase="execute",
                       error=f"deadline of {t.deadline.seconds:g}s expired "
                             f"during execution")
            return [t]
        t.status = DONE
        t.result = result
        t.finished_at = self._clock()
        self.metrics.inc("serve_served")
        self.metrics.observe("serve_latency_seconds", t.latency)
        return [t]

    def _retry_or_fail(self, t: Ticket, exc: Exception) -> list[Ticket]:
        """Burn one attempt: schedule a backoff retry, or go terminal."""
        if t.deadline is not None and t.deadline.expired():
            self._fail(t, TIMED_OUT, phase="execute",
                       error=f"deadline expired after {t.attempts} "
                             f"attempt(s); last error: {exc!r}")
            return [t]
        if t.attempts <= self.max_retries:
            delay = self.retry.delay(t.attempts) if self.retry else 0.0
            t.not_before = self._clock() + delay
            self._backoff.append(t)
            self.metrics.inc("serve_retries")
            if self.tracer:
                self.tracer.instant("serve_retry", job=t.job_id,
                                    attempt=t.attempts)
            if self.flight is not None:
                self.flight.record("serve_retry", job=t.job_id,
                                   attempt=t.attempts, error=repr(exc))
            if delay:
                self.metrics.observe("serve_backoff_seconds", delay)
            return []
        self._fail(t, FAILED, phase="execute", error=repr(exc))
        return [t]

    def _fail(self, t: Ticket, status: str, phase: str, error: str) -> None:
        t.status = status
        t.finished_at = self._clock()
        t.failure = JobFailure(
            job_id=t.job_id, client=t.client, phase=phase, error=error,
            attempts=t.attempts, submitted_at=t.submitted_at,
            failed_at=t.finished_at,
            deadline_seconds=None if t.deadline is None
            else t.deadline.seconds)
        self.metrics.inc("serve_timeouts" if status == TIMED_OUT
                         else "serve_failures")
        self.metrics.emit({"type": "job_failure", **t.failure.to_dict()})
        if self.flight is not None:
            self.flight.record(
                "serve_timeout" if status == TIMED_OUT else "serve_failure",
                job=t.job_id, client=t.client, phase=phase, error=error,
                attempts=t.attempts)
