"""Job types, tickets, and structured failure reports for the service.

A *job* is one unit of client work: a single-point energy/force
evaluation (:class:`EvalJob` — the batchable bread-and-butter request),
a short MD segment (:class:`MDJob`), a committee uncertainty query
(:class:`CommitteeJob`), or an arbitrary callable (:class:`TaskJob`,
used by the deterministic scheduler tests and for custom work units).

Submitting a job yields a :class:`Ticket` — the client-side handle that
carries the job's lifecycle (``pending -> done | failed | timed-out``),
its result, and, on failure, a :class:`JobFailure` report modeled on
:class:`repro.robust.deadline.FailureReport`: where the job died
(queued vs. executing), the final error, attempts burned, and the
clock readings a post-mortem needs.  All timestamps come from the
service's injectable clock, so tests never touch the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "PENDING", "DONE", "FAILED", "TIMED_OUT", "TERMINAL_STATES",
    "EvalJob", "MDJob", "CommitteeJob", "TaskJob",
    "EvalOutput", "MDOutput", "JobFailure", "Ticket",
]

#: Ticket lifecycle states.  ``pending`` covers queued *and* executing
#: (the scheduler is synchronous per round); the terminal states are
#: mutually exclusive and final.
PENDING = "pending"
DONE = "done"
FAILED = "failed"
TIMED_OUT = "timed-out"
TERMINAL_STATES = (DONE, FAILED, TIMED_OUT)


@dataclass
class EvalJob:
    """One single-point energy/force/virial evaluation.

    The service builds the neighbor structure (once, cached on the
    ticket so retries do not rebuild) and evaluates through the model's
    resolved :class:`~repro.core.backend.ForceBackend`.  Jobs naming
    the same model with the same precision share a batch key, so the
    scheduler packs them into one batched evaluation.
    """

    coords: np.ndarray
    types: np.ndarray
    box: Any
    model: str = "default"      #: registered model name
    precision: Any = None       #: optional dtype (f32 fast path)

    kind = "eval"


@dataclass
class MDJob:
    """A short MD segment: integrate ``n_steps`` and return the end state.

    Never batched (the step loop is stateful); runs on the exact serial
    :class:`~repro.md.simulation.Simulation` path.
    """

    coords: np.ndarray
    types: np.ndarray
    box: Any
    masses: np.ndarray          #: per-type masses (amu)
    n_steps: int = 10
    dt_fs: float = 1.0
    temperature: float = 330.0
    seed: int = 0
    model: str = "default"

    kind = "md"


@dataclass
class CommitteeJob:
    """A committee uncertainty query (DP-GEN's model-deviation metrics).

    Evaluated through a registered :class:`~repro.core.committee.
    ModelCommittee`; returns its :class:`DeviationRecord`.
    """

    coords: np.ndarray
    types: np.ndarray
    box: Any
    committee: str = "default"  #: registered committee name

    kind = "committee"


@dataclass
class TaskJob:
    """An arbitrary callable work unit.

    ``fn()`` is invoked at dispatch; its return value becomes the
    ticket's result.  ``tag`` is the batch key — same-tag task jobs are
    grouped into one dispatch round (occupancy accounting), though each
    callable still runs individually.  The deterministic scheduler
    tests are built on this type (zero numerical cost), and it doubles
    as the extension point for custom job families.
    """

    fn: Callable[[], Any]
    tag: str = "task"

    kind = "task"


@dataclass
class EvalOutput:
    """Result of one :class:`EvalJob` (ghost forces already folded)."""

    energy: float
    forces: np.ndarray          #: (n_local, 3), ghost rows folded back
    virial: np.ndarray
    atomic_energies: np.ndarray


@dataclass
class MDOutput:
    """Result of one :class:`MDJob`."""

    coords: np.ndarray
    velocities: np.ndarray
    energy: float               #: final potential energy
    n_steps: int


@dataclass
class JobFailure:
    """Structured failure report (the serving analogue of
    :class:`repro.robust.deadline.FailureReport`)."""

    job_id: int
    client: str
    phase: str                  #: ``"queued"`` or ``"execute"``
    error: str                  #: repr of the final error / miss
    attempts: int = 0           #: execution attempts burned
    submitted_at: float = 0.0   #: service-clock reading at submit
    failed_at: float = 0.0      #: service-clock reading at failure
    deadline_seconds: float | None = None  #: the job's budget, if any

    def to_dict(self) -> dict:
        """JSON-safe rendering."""
        return {
            "job_id": self.job_id,
            "client": self.client,
            "phase": self.phase,
            "error": self.error,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "failed_at": self.failed_at,
            "deadline_seconds": self.deadline_seconds,
        }


@dataclass
class Ticket:
    """Client-side handle for one submitted job."""

    job_id: int
    client: str
    job: Any
    submitted_at: float
    deadline: Any = None        #: optional repro.robust Deadline
    status: str = PENDING
    result: Any = None
    failure: JobFailure | None = None
    attempts: int = 0
    finished_at: float | None = None
    #: Earliest service-clock time a retried job may be re-dispatched
    #: (the RetryPolicy backoff, enforced without sleeping the queue).
    not_before: float = 0.0
    #: Neighbor structure cache: built once on first dispatch so a
    #: retry never redoes the binning.
    _neighbors: Any = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATES

    @property
    def latency(self) -> float | None:
        """Submit-to-terminal seconds on the service clock."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def __repr__(self) -> str:
        return (f"Ticket(id={self.job_id}, client={self.client!r}, "
                f"kind={getattr(self.job, 'kind', '?')}, "
                f"status={self.status!r})")
