"""Machine, cost, memory, and scaling models — the substitution for the
Summit and Fugaku testbeds (DESIGN.md §3/§5).
"""

from .costmodel import (
    PAPER_SINGLE_DEVICE,
    hybrid_time_per_atom_us,
    speedup_ladder,
    stage_breakdown,
    time_per_atom_us,
    tts_us_per_step_per_atom,
)
from .kernels import (
    amdahl_speedup,
    fitted_serial_fraction,
    measured_serial_fraction,
    parallel_efficiency,
    step_kernel_costs,
    total_flops_per_atom,
)
from .compiled import (
    HAVE_NUMBA,
    CompiledPackedBackend,
    disable_compiled_backend,
    enable_compiled_backend,
)
from .machine import (
    A64FX,
    FUGAKU,
    SUMMIT,
    V100,
    DeviceSpec,
    HostCacheInfo,
    MachineSpec,
    default_kernel_chunk,
    detect_host_cache,
)
from .memory import (
    MemoryModel,
    bytes_per_atom,
    max_atoms_device,
    max_atoms_node_scheme,
)
from .power import NormalizedRow, table2_rows
from .profiler import SectionTimer
from .timeline import StepTimeline, simulate_step
from .tuning import DEFAULT_SWEEP_CHUNKS, sweep_kernel_chunk
from .validate import ValidationRow, validation_report
from .scaling import (
    GHOST_US_PER_ATOM,
    CheckpointCostModel,
    ScalePoint,
    ghost_atoms_per_rank,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "A64FX",
    "CompiledPackedBackend",
    "DEFAULT_SWEEP_CHUNKS",
    "DeviceSpec",
    "CheckpointCostModel",
    "FUGAKU",
    "GHOST_US_PER_ATOM",
    "HAVE_NUMBA",
    "HostCacheInfo",
    "MachineSpec",
    "MemoryModel",
    "NormalizedRow",
    "PAPER_SINGLE_DEVICE",
    "ScalePoint",
    "SectionTimer",
    "StepTimeline",
    "SUMMIT",
    "V100",
    "default_kernel_chunk",
    "detect_host_cache",
    "disable_compiled_backend",
    "enable_compiled_backend",
    "sweep_kernel_chunk",
    "amdahl_speedup",
    "bytes_per_atom",
    "fitted_serial_fraction",
    "ghost_atoms_per_rank",
    "measured_serial_fraction",
    "parallel_efficiency",
    "hybrid_time_per_atom_us",
    "max_atoms_device",
    "max_atoms_node_scheme",
    "speedup_ladder",
    "simulate_step",
    "stage_breakdown",
    "step_kernel_costs",
    "strong_scaling",
    "table2_rows",
    "time_per_atom_us",
    "total_flops_per_atom",
    "tts_us_per_step_per_atom",
    "ValidationRow",
    "validation_report",
    "weak_scaling",
]
