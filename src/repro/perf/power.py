"""Table 2: A64FX-vs-V100 comparison normalized by peak and power.

The paper normalizes single-device time-to-solution by multiplying with
the device's theoretical peak (``TtS x Peak``) and with its average
power draw (``TtS x Power``), then quotes A64FX's advantage as a speedup
factor relative to V100.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.variants import Stage
from ..workloads.registry import Workload
from .costmodel import tts_us_per_step_per_atom
from .machine import A64FX, V100, DeviceSpec

__all__ = ["NormalizedRow", "table2_rows"]


@dataclass(frozen=True)
class NormalizedRow:
    """One row of Table 2."""

    machine: str
    system: str
    tts_us: float           #: µs / step / atom
    tts_x_peak: float       #: TtS x peak TFLOPS
    tts_x_power: float      #: TtS x watts
    peak_speedup_vs_v100: float
    power_speedup_vs_v100: float


def _normalize(device: DeviceSpec, w: Workload,
               ref: "NormalizedRow | None") -> NormalizedRow:
    tts = tts_us_per_step_per_atom(device, w, Stage.OTHER_OPT)
    x_peak = tts * device.peak_tflops_norm
    x_power = tts * device.power_w
    return NormalizedRow(
        machine="Summit" if device is V100 else "Fugaku",
        system=w.name,
        tts_us=tts,
        tts_x_peak=x_peak,
        tts_x_power=x_power,
        peak_speedup_vs_v100=(ref.tts_x_peak / x_peak) if ref else 1.0,
        power_speedup_vs_v100=(ref.tts_x_power / x_power) if ref else 1.0,
    )


def table2_rows(workloads) -> list:
    """All rows of Table 2 for the given workloads (V100 is the baseline)."""
    rows = []
    for w in workloads:
        v100_row = _normalize(V100, w, None)
        rows.append(v100_row)
    for w, v100_row in zip(workloads, list(rows)):
        rows.append(_normalize(A64FX, w, v100_row))
    return rows
