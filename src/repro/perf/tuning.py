"""Cache-tunable sweeps for the fused kernels (Secs. 3.4.1, 3.5.1).

The paper picks its LDM/thread-block tile sizes per device; the NumPy
port's equivalent knob is the fused kernels' neighbor-chunk length.
:func:`sweep_kernel_chunk` times the packed forward (and optionally
backward) kernel across a ladder of chunk lengths and returns the
U-curve — too small and the Python-level per-chunk overhead dominates,
too large and the working set falls out of L2 — together with the
cache-model default (:func:`repro.perf.machine.default_kernel_chunk`)
so benchmarks can record how close the model's pick lands to the
measured optimum.  Results are bitwise chunk-invariant, so the sweep is
a pure timing exercise.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.fused import fused_backward_packed, fused_contract_packed
from .machine import default_kernel_chunk, detect_host_cache

__all__ = ["DEFAULT_SWEEP_CHUNKS", "sweep_kernel_chunk"]

#: Power-of-two ladder spanning the plausible cache regimes.
DEFAULT_SWEEP_CHUNKS = (256, 512, 1024, 2048, 4096, 8192, 16384, 65536)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sweep_kernel_chunk(table, s, rows, indptr, n_m_norm: int,
                       chunks=None, repeats: int = 3,
                       dt: np.ndarray | None = None) -> dict:
    """Time the packed fused kernels across chunk lengths (the U-curve).

    Parameters
    ----------
    table, s, rows, indptr, n_m_norm:
        A packed workload exactly as :func:`~repro.core.fused.
        fused_contract_packed` takes it.
    chunks:
        Chunk lengths to sweep (default :data:`DEFAULT_SWEEP_CHUNKS`).
    repeats:
        Best-of-N timing per point.
    dt:
        Optional ``(n, 4, M)`` upstream gradient; when given the
        backward kernel is swept too and the recorded wall time per
        point is forward + backward.

    Returns a dict with one entry per chunk (``chunk``, ``forward_s``,
    ``backward_s``, ``total_s``), the measured ``best_chunk``, the cache
    model's ``default_chunk`` for this table/dtype, and the detected
    host cache sizes.
    """
    chunks = tuple(chunks) if chunks is not None else DEFAULT_SWEEP_CHUNKS
    if not chunks:
        raise ValueError("need at least one chunk length to sweep")
    n = len(indptr) - 1
    pair_atom = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
    points = []
    for chunk in chunks:
        fwd = _best_of(
            lambda: fused_contract_packed(table, s, rows, indptr, n_m_norm,
                                          chunk=chunk),
            repeats)
        bwd = 0.0
        if dt is not None:
            bwd = _best_of(
                lambda: fused_backward_packed(table, dt, s, rows, indptr,
                                              n_m_norm, chunk=chunk,
                                              pair_atom=pair_atom),
                repeats)
        points.append({
            "chunk": int(chunk),
            "forward_s": fwd,
            "backward_s": bwd,
            "total_s": fwd + bwd,
        })
    best = min(points, key=lambda p: p["total_s"])
    cache = detect_host_cache()
    return {
        "points": points,
        "best_chunk": best["chunk"],
        "default_chunk": default_kernel_chunk(
            table.m_out, itemsize=rows.dtype.itemsize),
        "host_cache": {
            "l1d_bytes": cache.l1d_bytes,
            "l2_bytes": cache.l2_bytes,
            "l3_bytes": cache.l3_bytes,
            "source": cache.source,
        },
        "pairs": int(s.shape[0]),
        "m_out": int(table.m_out),
        "dtype": str(np.dtype(rows.dtype)),
        "repeats": int(repeats),
    }
