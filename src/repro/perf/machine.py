"""Machine models: V100/Summit and A64FX/Fugaku (Sec. 5).

Hardware numbers are the paper's (peak FLOPS, memory size/bandwidth,
power, node counts, interconnect).  Per-kernel-class efficiency factors,
tanh timings, and per-rank framework overheads are this reproduction's
*calibration constants*: they are fixed once, here, against the paper's
single-device anchors (Table 2 time-to-solution, the Fig. 7/8 stage
ladders), after which every other number the model produces (scaling
curves, capacity ratios, normalized comparisons) is a prediction.  See
DESIGN.md §5 and EXPERIMENTS.md for the paper-vs-model record.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field

__all__ = [
    "DeviceSpec",
    "MachineSpec",
    "HostCacheInfo",
    "V100",
    "A64FX",
    "SUMMIT",
    "FUGAKU",
    "detect_host_cache",
    "default_kernel_chunk",
]


@dataclass(frozen=True)
class DeviceSpec:
    """One compute device plus its calibrated kernel-class efficiencies.

    ``flop_eff`` / ``bw_eff`` map a kernel class to the fraction of
    theoretical peak that class achieves:

    * ``"tf"``     — stock TensorFlow operators (baseline paths),
    * ``"gemm"``   — dense GEMM (descriptor, optimized fitting net),
    * ``"custom"`` — hand-written ops (env-mat, force, virial),
    * ``"fused"``  — the fused tabulation kernel (Sec. 3.4.1 reports 94 %
      of V100 bandwidth),
    * ``"table"``  — unfused table evaluation.

    ``tanh_ns`` is the wall time of one scalar tanh on each path:
    ``lib`` (vendor libm / TF), ``tab`` (the second-order table of
    Sec. 3.5.3 — the paper measures a ~60x speedup on A64FX), and
    ``baseline_port`` (the unoptimized scalar/AoS flat-MPI port whose
    tanh dominates the A64FX baseline).

    ``framework_us`` is the per-rank per-step framework overhead (graph
    launch, op scheduling, buffer management) by optimization stage
    group: the baseline's many fine-grained TF ops versus the optimized
    code's few fused kernels.  It divides by the atoms-per-rank, which is
    why the A64FX flat-MPI baseline (384 atoms/rank) suffers so much
    more than the single-GPU runs (thousands of atoms per rank).
    """

    name: str
    peak_tflops: float          #: double-precision peak (TFLOP/s)
    mem_gb: float               #: device HBM capacity
    mem_bw_gbs: float           #: HBM bandwidth (GB/s)
    power_w: float              #: average power (Table 2 / top500)
    flop_eff: dict = field(default_factory=dict)
    bw_eff: dict = field(default_factory=dict)
    tanh_ns: dict = field(default_factory=dict)
    framework_us: dict = field(default_factory=dict)
    #: Peak used for Table 2's TtS x Peak normalization; the paper uses
    #: the A64FX boost clock (3.38 TFLOPS at 2.2 GHz) there.
    peak_tflops_norm: float = 0.0

    def __post_init__(self):
        if self.peak_tflops_norm == 0.0:
            object.__setattr__(self, "peak_tflops_norm", self.peak_tflops)

    def eff_flops(self, cls: str) -> float:
        """Achievable FLOP/s for a kernel class."""
        return self.peak_tflops * 1e12 * self.flop_eff.get(cls, 0.5)

    def eff_bw(self, cls: str) -> float:
        """Achievable bytes/s for a kernel class."""
        return self.mem_bw_gbs * 1e9 * self.bw_eff.get(cls, 0.5)


#: NVIDIA V100 as deployed in Summit (Sec. 5) with calibrated constants.
V100 = DeviceSpec(
    name="V100",
    peak_tflops=7.0,
    mem_gb=16.0,
    mem_bw_gbs=900.0,
    power_w=369.0,
    flop_eff={"tf": 0.246, "gemm": 0.170, "custom": 0.20, "fused": 0.35,
              "table": 0.30},
    bw_eff={"tf": 0.551, "gemm": 0.55, "custom": 0.45, "fused": 0.94,
            "table": 0.95},
    tanh_ns={"lib": 0.183, "tab": 0.01, "baseline_port": 0.092},
    # Per-rank, per-graph-MB framework overhead (µs) by stage group,
    # fitted by tools/calibrate_costmodel.py.
    framework_us={"baseline": 118.3, "tabulated": 26.1, "optimized": 15.4},
)

#: Fujitsu A64FX (one Fugaku node).  The paper's A64FX baseline is an
#: unoptimized flat-MPI port (Sec. 6.2): scalar AoS tanh dominates it
#: (``baseline_port``), and 48 single-threaded ranks pay the framework
#: overhead at only a few hundred atoms each.
A64FX = DeviceSpec(
    name="A64FX",
    peak_tflops=3.07,
    mem_gb=32.0,
    mem_bw_gbs=1024.0,
    power_w=165.0,
    flop_eff={"tf": 0.253, "gemm": 0.217, "custom": 0.08, "fused": 0.22,
              "table": 0.10},
    bw_eff={"tf": 0.293, "gemm": 0.35, "custom": 0.25, "fused": 0.727,
            "table": 0.168},
    tanh_ns={"lib": 2.545, "tab": 0.05, "baseline_port": 1.682},
    # Per-rank, per-graph-MB framework overhead (µs) by stage group,
    # fitted by tools/calibrate_costmodel.py.
    framework_us={"baseline": 96.8, "tabulated": 3.77, "optimized": 0.5},
    peak_tflops_norm=3.38,  # auto-boost peak, used by Table 2
)


@dataclass(frozen=True)
class MachineSpec:
    """A full machine: nodes of devices plus the interconnect."""

    name: str
    device: DeviceSpec
    devices_per_node: int
    n_nodes: int
    nic_bw_gbs: float           #: injection bandwidth per node (GB/s)
    nic_latency_us: float       #: per-message latency (µs)
    ranks_per_node: int         #: the paper's optimized launch config
    baseline_ranks_per_node: int  #: the flat-MPI baseline launch config

    @property
    def n_devices(self) -> int:
        return self.devices_per_node * self.n_nodes

    @property
    def peak_pflops(self) -> float:
        return self.device.peak_tflops * self.n_devices / 1e3

    def nodes_fraction(self, frac: float) -> int:
        return max(1, int(round(self.n_nodes * frac)))


#: Summit (Sec. 5): the paper uses up to 4,560 of 4,608 nodes; 6 V100 per
#: node, dual-rail EDR InfiniBand at 25 GB/s, 6 MPI ranks per node.
SUMMIT = MachineSpec(
    name="Summit",
    device=V100,
    devices_per_node=6,
    n_nodes=4_560,
    nic_bw_gbs=25.0,
    nic_latency_us=1.5,
    ranks_per_node=6,
    baseline_ranks_per_node=6,
)

#: Fugaku (Sec. 5): 157,986 nodes (the paper tests up to 9,936 and
#: projects to the full machine), Tofu-D interconnect; the optimized
#: code launches 16 ranks x 3 threads, the baseline 48 flat ranks.
FUGAKU = MachineSpec(
    name="Fugaku",
    device=A64FX,
    devices_per_node=1,
    n_nodes=157_986,
    nic_bw_gbs=6.8,
    nic_latency_us=1.0,
    ranks_per_node=16,
    baseline_ranks_per_node=48,
)


# --------------------------------------------------------------------------
# Host cache model — the cache-aware chunk default of the fused kernels.
#
# The paper sizes its LDM/thread-block tiles to the device memory
# hierarchy (Secs. 3.4.1, 3.5.1); the NumPy analogue is picking the
# neighbor-chunk length of the fused kernels so one chunk's working set
# (env-matrix rows, the tabulated g rows, and the outer-product
# contributions) stays resident in the host's L2 cache.

@dataclass(frozen=True)
class HostCacheInfo:
    """Per-core data-cache sizes of the machine this process runs on.

    Detected from Linux sysfs when available; falls back to conservative
    laptop-class defaults (``source="default"``) elsewhere — the fused
    kernels only use these to pick a chunk length, so a wrong guess
    costs performance, never correctness.
    """

    l1d_bytes: int = 32 * 1024
    l2_bytes: int = 512 * 1024
    l3_bytes: int = 8 * 1024 * 1024
    source: str = "default"


def _parse_cache_size(text: str) -> int:
    text = text.strip()
    if text.endswith("K"):
        return int(text[:-1]) * 1024
    if text.endswith("M"):
        return int(text[:-1]) * 1024 * 1024
    return int(text)


def detect_host_cache() -> HostCacheInfo:
    """Read per-core cache sizes from sysfs (cached after the first call)."""
    global _HOST_CACHE
    if _HOST_CACHE is not None:
        return _HOST_CACHE
    levels: dict[int, int] = {}
    try:
        for index in glob.glob(
                "/sys/devices/system/cpu/cpu0/cache/index*"):
            try:
                with open(os.path.join(index, "type")) as fh:
                    if fh.read().strip() == "Instruction":
                        continue
                with open(os.path.join(index, "level")) as fh:
                    level = int(fh.read())
                with open(os.path.join(index, "size")) as fh:
                    size = _parse_cache_size(fh.read())
            except (OSError, ValueError):
                continue
            levels[level] = size
    except OSError:
        levels = {}
    default = HostCacheInfo()
    if levels:
        _HOST_CACHE = HostCacheInfo(
            l1d_bytes=levels.get(1, default.l1d_bytes),
            l2_bytes=levels.get(2, default.l2_bytes),
            l3_bytes=levels.get(3, levels.get(2, default.l3_bytes)),
            source="sysfs",
        )
    else:
        _HOST_CACHE = default
    return _HOST_CACHE


_HOST_CACHE: HostCacheInfo | None = None

#: Bounds on the auto-picked chunk: below ~256 pairs the Python-level
#: per-chunk overhead (slicing, table locate) dominates; above 64k the
#: working set has long left every cache and only peak memory grows.
MIN_KERNEL_CHUNK = 256
MAX_KERNEL_CHUNK = 65_536


def default_kernel_chunk(m_out: int, itemsize: int = 8,
                         cache: HostCacheInfo | None = None,
                         target_fraction: float = 0.5) -> int:
    """Cache-aware default neighbor-chunk length for the fused kernels.

    Sizes the chunk so one iteration's working set — the ``(chunk, 4)``
    env-matrix rows, the ``(chunk, M)`` tabulated ``g`` rows, the
    ``(chunk, 4, M)`` outer-product contributions, and the float64
    accumulation copy of the contributions — fills ``target_fraction``
    of the L2 cache.  The result is clamped to
    ``[MIN_KERNEL_CHUNK, MAX_KERNEL_CHUNK]`` and rounded down to a
    multiple of 64 pairs.  The chunk length never affects results (the
    fused kernels reduce each atom's segment independently), so this is
    a pure performance knob.
    """
    if m_out < 1:
        raise ValueError(f"m_out must be positive, got {m_out}")
    cache = detect_host_cache() if cache is None else cache
    bytes_per_pair = (5 + m_out + 4 * m_out) * itemsize + 4 * m_out * 8
    budget = cache.l2_bytes * target_fraction
    chunk = int(budget // bytes_per_pair)
    chunk = max(MIN_KERNEL_CHUNK, min(MAX_KERNEL_CHUNK, chunk))
    return max(MIN_KERNEL_CHUNK, (chunk // 64) * 64)
