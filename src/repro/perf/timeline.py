"""Event-driven timeline of one distributed MD step.

The analytic scaling model sums per-phase costs; this discrete-event
companion simulates the step rank by rank — compute (with per-rank load
imbalance), a communication phase serialized per node through the NIC,
and a synchronizing reduction — producing the step *makespan* and the
idle time lost to stragglers.  It quantifies what the closed-form model
abstracts away: load imbalance converts directly into makespan because
the ghost exchange is a synchronization point.

Used by the load-balance ablation: feed it the per-rank atom counts of a
uniform grid vs an RCB partition and compare makespans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StepTimeline", "simulate_step"]


@dataclass(frozen=True)
class StepTimeline:
    """Outcome of one simulated step."""

    makespan_s: float           #: wall time of the whole step
    compute_s: float            #: mean per-rank compute time
    comm_s: float               #: mean per-rank communication time
    idle_s: float               #: mean time ranks spend waiting
    imbalance: float            #: max/mean compute load

    @property
    def efficiency(self) -> float:
        """Useful-work fraction: mean busy time over makespan."""
        return (self.compute_s + self.comm_s) / self.makespan_s


def simulate_step(
    atoms_per_rank,
    ghosts_per_rank,
    per_atom_us: float,
    per_ghost_us: float,
    ranks_per_node: int = 1,
    latency_us: float = 1.0,
    n_messages: int = 26,
) -> StepTimeline:
    """Simulate one step's makespan.

    Parameters
    ----------
    atoms_per_rank, ghosts_per_rank:
        Per-rank loads (arrays); imbalance enters through them.
    per_atom_us, per_ghost_us:
        Compute cost per local atom; communication cost per ghost atom.
    ranks_per_node:
        Ranks sharing one NIC — their communication serializes.
    latency_us, n_messages:
        Per-message latency and message count per rank.

    Model: every rank computes for ``atoms * per_atom_us``; ranks on a
    node then take the NIC in arrival order (busy-server queue); the
    step ends when the slowest rank finishes its exchange (the force
    reduction synchronizes everyone).
    """
    atoms = np.asarray(atoms_per_rank, dtype=np.float64)
    ghosts = np.asarray(ghosts_per_rank, dtype=np.float64)
    if atoms.shape != ghosts.shape:
        raise ValueError("per-rank arrays must align")
    n_ranks = len(atoms)
    compute = atoms * per_atom_us * 1e-6
    comm = (ghosts * per_ghost_us + n_messages * latency_us) * 1e-6

    finish = np.empty(n_ranks)
    for node_start in range(0, n_ranks, ranks_per_node):
        node = slice(node_start, min(node_start + ranks_per_node, n_ranks))
        order = np.argsort(compute[node])
        nic_free = 0.0
        for local in order:
            idx = node_start + local
            start = max(compute[idx], nic_free)
            finish[idx] = start + comm[idx]
            nic_free = finish[idx]
    makespan = float(finish.max())
    busy = compute + comm
    return StepTimeline(
        makespan_s=makespan,
        compute_s=float(compute.mean()),
        comm_s=float(comm.mean()),
        idle_s=float(np.mean(makespan - busy)),
        imbalance=float(atoms.max() / atoms.mean()) if atoms.mean() else 1.0,
    )
