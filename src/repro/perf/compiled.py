"""Optional numba-compiled backend for the fused inference path.

The paper's production kernels are hand-written CUDA/SVE; the NumPy
port's nearest analogue is JIT-compiling the hottest per-pair loop — the
quintic Horner table evaluation that both fused kernels spend most of
their time in — with numba.  The backend plugs in **purely** through the
:func:`repro.core.backend.register_backend` contract: no driver, engine
or model change is needed, which is exactly what the PR 5 backend
redesign promised.

numba is an optional dependency.  The module always imports cleanly;
without numba the ``@njit`` decorator degrades to a no-op so the kernels
below still run as (slow but correct) pure-Python loops, and
:func:`enable_compiled_backend` refuses with an informative error so a
driver can't silently run the interpreted loops believing them compiled.

Usage::

    from repro.perf.compiled import enable_compiled_backend
    enable_compiled_backend()          # raises RuntimeError without numba
    backend = backend_for(compressed)  # -> CompiledPackedBackend
    ...
    disable_compiled_backend()
"""

from __future__ import annotations

import numpy as np

from ..core.backend import PackedBackend, register_backend, unregister_backend
from ..core.compressed import CompressedDPModel

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_SKIP_REASON",
    "CompiledEmbeddingTable",
    "CompiledPackedBackend",
    "enable_compiled_backend",
    "disable_compiled_backend",
]

#: The one canonical explanation for skipping compiled-backend work on
#: a numba-less host — shared by :func:`enable_compiled_backend`'s
#: error and every ``@pytest.mark.compiled`` skip, so a skipped CI run
#: says *why* in the same words everywhere (and a test can assert the
#: exact string).
NUMBA_SKIP_REASON = (
    "numba is not installed; the compiled backend would fall back "
    "to interpreted per-pair loops. Install numba or stay on the "
    "default vectorized backend.")

try:
    from numba import njit
    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised on numba-less hosts
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """No-op decorator: keeps the kernels importable without numba."""
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate


@njit(cache=True)
def _horner_eval(c0, c1, c2, c3, c4, c5, idx, t, out):
    """out[p, j] = quintic(c*, idx[p], t[p]) — one fused scalar loop."""
    n, m = out.shape
    for p in range(n):
        i = idx[p]
        tp = t[p]
        for j in range(m):
            v = c5[i, j]
            v = v * tp + c4[i, j]
            v = v * tp + c3[i, j]
            v = v * tp + c2[i, j]
            v = v * tp + c1[i, j]
            v = v * tp + c0[i, j]
            out[p, j] = v


@njit(cache=True)
def _horner_eval_deriv(c0, c1, c2, c3, c4, c5, idx, t, val, der):
    """Simultaneous Horner for value and derivative (the backward pass)."""
    n, m = val.shape
    for p in range(n):
        i = idx[p]
        tp = t[p]
        for j in range(m):
            v = c5[i, j]
            d = v
            v = v * tp + c4[i, j]
            d = d * tp + v
            v = v * tp + c3[i, j]
            d = d * tp + v
            v = v * tp + c2[i, j]
            d = d * tp + v
            v = v * tp + c1[i, j]
            d = d * tp + v
            v = v * tp + c0[i, j]
            val[p, j] = v
            der[p, j] = d


class CompiledEmbeddingTable:
    """njit-evaluated drop-in for the fused kernels' table argument.

    Holds the coefficient-major planes of a table (AoS or SoA source)
    and evaluates the quintic through the compiled scalar loops above.
    The per-element operation sequence matches the NumPy evaluators
    exactly, so float64 results are bitwise identical to the AoS path.
    """

    def __init__(self, table):
        self.x_min = float(table.x_min)
        self.interval = float(table.interval)
        self.n_intervals = int(table.n_intervals)
        self.m_out = int(table.m_out)
        coeffs = np.asarray(table.coeffs)
        if coeffs.ndim == 3 and coeffs.shape[2] == 6:
            coeffs = coeffs.transpose(2, 0, 1)
        # One contiguous (n_intervals, M) plane per coefficient, the
        # layout the compiled loops stream.
        self._planes = tuple(
            np.ascontiguousarray(coeffs[k]) for k in range(6))

    @property
    def dtype(self):
        return self._planes[0].dtype

    @property
    def size_bytes(self) -> int:
        return sum(p.nbytes for p in self._planes)

    def flops_per_input(self) -> int:
        return 14 * self.m_out

    def _locate(self, x: np.ndarray):
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        t = x - self.x_min
        idx = np.floor(t / self.interval).astype(np.intp)
        np.clip(idx, 0, self.n_intervals - 1, out=idx)
        # The local coordinate enters the compiled loop in the
        # coefficient dtype so the f32 path never upcasts.
        return idx, (t - idx * self.interval).astype(self.dtype, copy=False)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        idx, t = self._locate(x)
        out = np.empty((idx.shape[0], self.m_out), dtype=self.dtype)
        c0, c1, c2, c3, c4, c5 = self._planes
        _horner_eval(c0, c1, c2, c3, c4, c5, idx, t, out)
        return out

    def evaluate_with_deriv(self, x: np.ndarray):
        idx, t = self._locate(x)
        val = np.empty((idx.shape[0], self.m_out), dtype=self.dtype)
        der = np.empty_like(val)
        c0, c1, c2, c3, c4, c5 = self._planes
        _horner_eval_deriv(c0, c1, c2, c3, c4, c5, idx, t, val, der)
        return val, der


class CompiledPackedBackend(PackedBackend):
    """PackedBackend whose model evaluates through compiled tables.

    Wraps the resolved :class:`~repro.core.compressed.CompressedDPModel`
    in a clone that shares every component except the tables, which are
    replaced by :class:`CompiledEmbeddingTable`.  Everything else —
    engine sharding, counters, chunk plumbing — flows through the
    inherited :class:`~repro.core.backend.PackedBackend` unchanged.
    """

    def __init__(self, model):
        compiled = CompressedDPModel(
            model.spec,
            [CompiledEmbeddingTable(t) for t in model.tables],
            model.fittings, model.energy_bias, chunk=model.chunk,
            type_weights=model.type_weights, accumulate=model.accumulate,
        )
        super().__init__(compiled, accepts_engine=True)
        self.name = "compiled"
        #: The uncompiled model this backend was resolved for.
        self.source_model = model


def _matches(model) -> bool:
    return isinstance(model, CompressedDPModel)


def enable_compiled_backend():
    """Register :class:`CompiledPackedBackend` for compressed models.

    Raises :class:`RuntimeError` when numba is unavailable — the
    pure-Python fallback loops exist for correctness testing only and
    would be far slower than the vectorized kernels.  Returns the
    factory (idempotent: repeated calls stack registrations, newest
    wins; use :func:`disable_compiled_backend` to undo).
    """
    if not HAVE_NUMBA:
        raise RuntimeError(NUMBA_SKIP_REASON)
    return register_backend(_matches, CompiledPackedBackend)


def disable_compiled_backend() -> bool:
    """Unregister the compiled backend; True if it was registered."""
    return unregister_backend(CompiledPackedBackend)
