"""Strong/weak scaling predictor (Figs. 9-11).

One MD step on ``n`` nodes decomposes into:

* **compute** — ``atoms_per_node x node_per_atom_rate`` from the roofline
  model (kernel times only; the framework term is separate);
* **framework** — the per-rank graph overhead; ranks run concurrently so
  it is paid once per step, scaled by the graph size;
* **communication** — ghost-shell exchange.  Ghost counts come from the
  *actual* rank-grid geometry (``best_grid`` factorization, shell of
  width ``rcut`` around each sub-box), costed at a calibrated per-ghost
  time that folds MPI packing, injection and synchronization
  (``GHOST_US_PER_ATOM``; Summit's fat nodes amortize far better than
  Fugaku's 16-rank CPUs — the paper's Sec. 6.4.1 observation);
* **checkpointing** (optional) — a :class:`CheckpointCostModel` built
  from the byte/latency counters a real instrumented run recorded
  (:mod:`repro.obs`) adds the amortized per-step cost of writing a
  rotating restart shard every ``interval_steps`` steps.

Parallel efficiency, ns/day and achieved PFLOPS follow directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.variants import Stage
from ..parallel.decomposition import best_grid
from ..units import SECONDS_PER_DAY
from ..workloads.registry import Workload
from .costmodel import stage_breakdown
from .kernels import total_flops_per_atom
from .machine import MachineSpec

__all__ = [
    "CheckpointCostModel",
    "ScalePoint",
    "strong_scaling",
    "weak_scaling",
    "ghost_atoms_per_rank",
    "GHOST_US_PER_ATOM",
]

#: Calibrated per-ghost-atom communication cost (µs), serialized per
#: node: packing + injection + sync.  Fixed by a grid search against the
#: paper's 4,560-node strong-scaling efficiencies and ns/day for both
#: systems on both machines (tools/calibrate_costmodel.py prints the
#: residuals; see EXPERIMENTS.md).
GHOST_US_PER_ATOM = {"Summit": 0.220, "Fugaku": 0.742}


def ghost_atoms_per_rank(w: Workload, n_atoms: int, n_ranks: int,
                         rhalo: float | None = None) -> float:
    """Expected ghost atoms per rank from the decomposition geometry."""
    if rhalo is None:
        rhalo = w.rcut
    volume = n_atoms / w.atom_density
    side = volume ** (1.0 / 3.0)
    grid = best_grid(n_ranks, (side, side, side))
    sub = np.array([side / g for g in grid])
    inner = float(np.prod(sub))
    outer = float(np.prod(sub + 2.0 * rhalo))
    return (outer - inner) * w.atom_density


@dataclass(frozen=True)
class CheckpointCostModel:
    """Measured checkpoint-write cost, amortized into the step time.

    Built from the counters/histograms an instrumented run records
    (``checkpoint_bytes``, ``checkpoint_writes``,
    ``checkpoint_write_seconds``, ``checkpoint_fsync_seconds`` — see
    :mod:`repro.obs` and :func:`repro.io.checkpoint.write_state_checkpoint`),
    so the projection's fault-tolerance overhead term is grounded in what
    the real writer actually cost rather than a guess.

    Every rank writes its own shard concurrently (the distributed
    driver's per-rank managers), so the per-step overhead is one rank's
    write time divided by the checkpoint interval.
    """

    bytes_per_atom: float       #: measured shard bytes per stored atom
    write_bandwidth_bps: float  #: payload bytes/s of the write itself
    fsync_seconds: float        #: mean fsync latency paid per write
    interval_steps: int = 100   #: steps between checkpoint writes

    @classmethod
    def from_metrics(cls, metrics, atoms_per_write: int,
                     interval_steps: int = 100) -> "CheckpointCostModel":
        """Fit from a :class:`repro.obs.MetricsRegistry` (or its
        ``snapshot()`` dict); ``atoms_per_write`` is the atom count each
        recorded write covered (local atoms for a shard)."""
        snap = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
        counters = snap.get("counters", {})
        hists = snap.get("histograms", {})
        writes = counters.get("checkpoint_writes", 0)
        nbytes = counters.get("checkpoint_bytes", 0)
        wh = hists.get("checkpoint_write_seconds")
        if not writes or not nbytes or not wh or not wh["count"]:
            raise ValueError(
                "metrics contain no checkpoint writes to calibrate from")
        fh = hists.get("checkpoint_fsync_seconds")
        fsync = fh["mean"] if fh and fh["count"] else 0.0
        bytes_per_write = nbytes / writes
        # Bandwidth of the non-fsync part; the fsync term is kept
        # separate because it is latency-bound, not size-bound.
        bw = bytes_per_write / max(wh["mean"] - fsync, 1e-9)
        return cls(bytes_per_atom=bytes_per_write / atoms_per_write,
                   write_bandwidth_bps=bw, fsync_seconds=fsync,
                   interval_steps=int(interval_steps))

    def write_seconds(self, atoms_per_rank: float) -> float:
        """Wall time of one shard write at this per-rank size."""
        payload = self.bytes_per_atom * atoms_per_rank
        return payload / self.write_bandwidth_bps + self.fsync_seconds

    def step_overhead_seconds(self, atoms_per_rank: float) -> float:
        """Amortized per-MD-step overhead of periodic checkpointing."""
        return self.write_seconds(atoms_per_rank) / max(
            1, self.interval_steps)


@dataclass(frozen=True)
class ScalePoint:
    """One point of a scaling curve."""

    nodes: int
    ranks: int
    atoms: int
    step_seconds: float
    compute_seconds: float
    comm_seconds: float
    framework_seconds: float
    efficiency: float
    ns_per_day: float
    pflops: float
    #: Amortized checkpoint-write overhead (0 when not modelled).
    checkpoint_seconds: float = 0.0


def _step_time(machine: MachineSpec, w: Workload, n_atoms: int,
               nodes: int, stage: Stage) -> tuple:
    device = machine.device
    ranks = nodes * machine.ranks_per_node
    atoms_per_node = n_atoms / nodes
    atoms_per_rank = n_atoms / ranks

    # Kernel-only node rate: all devices of the node work in parallel.
    kernels = stage_breakdown(device, w, stage, atoms_per_rank=None).kernels
    per_atom_us = sum(k.time_us for k in kernels) / machine.devices_per_node
    t_comp = atoms_per_node * per_atom_us * 1e-6

    fw_key = "baseline" if stage is Stage.BASELINE else "optimized"
    t_fw = device.framework_us[fw_key] * w.tf_graph_mb * 1e-6

    ghosts = ghost_atoms_per_rank(w, n_atoms, ranks)
    t_comm = (ghosts * machine.ranks_per_node
              * GHOST_US_PER_ATOM[machine.name] * 1e-6
              + 52 * machine.nic_latency_us * 1e-6)
    return t_comp, t_fw, t_comm


def _point(machine, w, n_atoms, nodes, stage, t_ref, nodes_ref,
           overlap: bool = False, checkpoint=None) -> ScalePoint:
    t_comp, t_fw, t_comm = _step_time(machine, w, n_atoms, nodes, stage)
    if overlap:
        # What-if ablation: perfect computation/communication overlap
        # (neither the paper nor DeePMD-kit implements it; the gap this
        # opens is the head-room overlap would buy).
        t = max(t_comp, t_comm) + t_fw
    else:
        t = t_comp + t_fw + t_comm
    t_ckpt = 0.0
    if checkpoint is not None:
        ranks = nodes * machine.ranks_per_node
        t_ckpt = checkpoint.step_overhead_seconds(n_atoms / ranks)
        t += t_ckpt
    eff = (t_ref * nodes_ref) / (t * nodes) if t_ref else 1.0
    ns_day = w.dt_fs * 1e-6 / t * SECONDS_PER_DAY
    pflops = total_flops_per_atom(w, stage) * n_atoms / t / 1e15
    return ScalePoint(
        nodes=nodes,
        ranks=nodes * machine.ranks_per_node,
        atoms=n_atoms,
        step_seconds=t,
        compute_seconds=t_comp,
        comm_seconds=t_comm,
        framework_seconds=t_fw,
        efficiency=eff,
        ns_per_day=ns_day,
        pflops=pflops,
        checkpoint_seconds=t_ckpt,
    )


def strong_scaling(machine: MachineSpec, w: Workload, n_atoms: int,
                   node_counts, stage: Stage = Stage.OTHER_OPT,
                   overlap: bool = False, checkpoint=None) -> list:
    """Fixed total size, growing node count (Figs. 9/10).

    Efficiency is relative to the smallest node count, as in the paper.
    ``overlap=True`` models perfect compute/communication overlap (a
    what-if ablation — see :func:`_point`).  ``checkpoint`` adds a
    measured :class:`CheckpointCostModel` as a per-step overhead term.
    """
    node_counts = sorted(node_counts)
    ref = _point(machine, w, n_atoms, node_counts[0], stage, None, None,
                 overlap, checkpoint)
    out = []
    for nodes in node_counts:
        out.append(_point(machine, w, n_atoms, nodes, stage,
                          ref.step_seconds, node_counts[0], overlap,
                          checkpoint))
    return out


def weak_scaling(machine: MachineSpec, w: Workload, atoms_per_rank: int,
                 node_counts, stage: Stage = Stage.OTHER_OPT,
                 checkpoint=None) -> list:
    """Fixed per-rank size, growing node count (Fig. 11).

    Weak-scaling efficiency is ``t(smallest) / t(n)`` — per-node work is
    constant, so ideal scaling keeps the step time flat.  ``checkpoint``
    adds a measured :class:`CheckpointCostModel` per-step overhead term
    (flat across node counts, like the per-node work).
    """
    from dataclasses import replace

    node_counts = sorted(node_counts)
    pts = []
    t_ref = None
    for nodes in node_counts:
        n_atoms = atoms_per_rank * nodes * machine.ranks_per_node
        p = _point(machine, w, n_atoms, nodes, stage, None, None,
                   checkpoint=checkpoint)
        if t_ref is None:
            t_ref = p.step_seconds
        pts.append(replace(p, efficiency=t_ref / p.step_seconds))
    return pts
