"""Memory-footprint model: per-atom bytes and device capacity (Secs. 6.1.2, 6.2.4).

The baseline's footprint is dominated by the embedding matrix ``G``
(``N_m x M`` doubles per atom, several live copies across the TF graph —
">95 % of total memory").  The optimized code never materializes ``G``;
its footprint is the packed pair data plus per-atom activations.

Model (calibration constants documented inline):

* baseline:  ``G_COPIES · N_m · M · 8  +  19 · N_m · 8  +  ATOM_FIXED``
* optimized: ``PAIR_COPIES(dev) · n_real · 19 · 8  +  ATOM_FIXED_OPT(dev)``

Paper checkpoints this model reproduces (EXPERIMENTS.md):
max atoms on one V100 grow 6x (water) / 26x (copper); a single A64FX
node grows from 110,592 to 165,888 water atoms moving from flat MPI to
the 16x3 hybrid (graph + MPI buffers deduplicated).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.variants import Stage
from ..parallel.scheme import ParallelScheme
from ..workloads.registry import Workload
from .machine import DeviceSpec

__all__ = [
    "MemoryModel",
    "bytes_per_atom",
    "max_atoms_device",
    "max_atoms_node_scheme",
]

#: Live copies of G-sized tensors in the baseline TF graph (forward
#: activations + stored backward inputs + temporaries).
G_COPIES = 4

#: Copies of the packed per-pair data (values + gradients) and the
#: per-atom fixed allocation (descriptor/fitting activations, integrator
#: state) for the optimized path, per device.  A64FX carries more
#: because its SoA conversions keep AoS+SoA images alive.
PAIR_COPIES = {"V100": 1.0, "A64FX": 2.0}
ATOM_FIXED_OPT_KB = {"V100": 65.0, "A64FX": 130.0}
ATOM_FIXED_BASE_KB = 20.0

#: Per-rank MPI buffer allocation on the many-core CPU path (Sec. 3.5.4
#: blames "TensorFlow graph, along with MPI buffers" for flat MPI's
#: memory waste).
MPI_BUFFER_MB = {"V100": 0.0, "A64FX": 177.0}

#: Fraction of device memory usable for per-atom arrays.
USABLE_FRACTION = 0.95


def bytes_per_atom(w: Workload, stage: Stage, device: DeviceSpec) -> float:
    """Modelled resident bytes per atom at an optimization stage."""
    if stage is Stage.BASELINE:
        g = G_COPIES * w.n_m * w.m_out * 8.0
        env = 19.0 * w.n_m * 8.0
        return g + env + ATOM_FIXED_BASE_KB * 1024.0
    if stage is Stage.TABULATION:
        # G still materialized (one copy less: no backward activations).
        g = (G_COPIES - 1) * w.n_m * w.m_out * 8.0
        env = 19.0 * w.n_m * 8.0
        return g + env + ATOM_FIXED_BASE_KB * 1024.0
    pairs = w.real_neighbors() * 19.0 * 8.0 * PAIR_COPIES[device.name]
    return pairs + ATOM_FIXED_OPT_KB[device.name] * 1024.0


def max_atoms_device(w: Workload, stage: Stage, device: DeviceSpec,
                     ranks: int = 1) -> int:
    """Largest system one device can hold at the given stage."""
    usable = device.mem_gb * 1e9 * USABLE_FRACTION
    usable -= ranks * (w.tf_graph_mb + MPI_BUFFER_MB[device.name]) * 1e6
    if usable <= 0:
        return 0
    return int(usable / bytes_per_atom(w, stage, device))


def max_atoms_node_scheme(w: Workload, device: DeviceSpec,
                          scheme: ParallelScheme,
                          stage: Stage = Stage.OTHER_OPT) -> int:
    """Node capacity under an MPI x OpenMP scheme (Sec. 6.2.4).

    Every rank replicates the graph and its MPI buffers; threads share
    them — the entire memory benefit of the hybrid scheme.
    """
    per_rank_mem = device.mem_gb * 1e9 * USABLE_FRACTION / scheme.ranks_per_node
    per_rank_mem -= (w.tf_graph_mb + MPI_BUFFER_MB[device.name]) * 1e6
    if per_rank_mem <= 0:
        return 0
    per_atom = bytes_per_atom(w, stage, device)
    return int(per_rank_mem / per_atom) * scheme.ranks_per_node


@dataclass(frozen=True)
class MemoryModel:
    """Convenience bundle for one workload on one device."""

    workload: Workload
    device: DeviceSpec

    def capacity_gain(self) -> float:
        """Optimized-over-baseline max-atom ratio (paper: 6x water /
        26x copper on V100)."""
        base = max_atoms_device(self.workload, Stage.BASELINE, self.device)
        opt = max_atoms_device(self.workload, Stage.OTHER_OPT, self.device)
        return opt / base if base else float("inf")

    def g_matrix_share(self) -> float:
        """Fraction of baseline memory held by G (paper: >95 %)."""
        g = G_COPIES * self.workload.n_m * self.workload.m_out * 8.0
        return g / bytes_per_atom(self.workload, Stage.BASELINE, self.device)
