"""Lightweight section profiler for the real kernels.

Sec. 2.2 motivates the whole paper with a profile: ">90 percent of the
total time [is] spent on execution of the embedding net".  The model
pipelines accept an optional :class:`SectionTimer` so the same
measurement can be reproduced on the NumPy kernels (see
``benchmarks/bench_profile_shares.py``).

Usage::

    timer = SectionTimer()
    with timer.section("embedding"):
        ...
    print(timer.report())
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["SectionTimer"]


class SectionTimer:
    """Accumulates wall time per named section (re-entrant per name).

    Updates are guarded by a lock, so the threaded engine's workers can
    record sections into one shared timer; :meth:`merge` folds a
    per-thread timer into this one after a join.
    """

    def __init__(self):
        self.totals: dict = {}
        self.calls: dict = {}
        self._lock = threading.Lock()

    @contextmanager
    def section(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Accumulate an externally measured duration (the span backend
        of :class:`repro.obs.Tracer` lands every finished span here)."""
        with self._lock:
            self.totals[name] = self.totals.get(name, 0.0) + seconds
            self.calls[name] = self.calls.get(name, 0) + calls

    def merge(self, other: "SectionTimer") -> None:
        """Fold another timer's accumulated sections into this one."""
        for name, t in other.totals.items():
            self.add(name, t, other.calls[name])

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def share(self, name: str) -> float:
        """Fraction of the accounted time spent in ``name``."""
        t = self.total
        return self.totals.get(name, 0.0) / t if t else 0.0

    def report(self) -> str:
        """Aligned text table, largest section first.

        Columns: absolute time, percent share of the accounted total,
        running cumulative percent (how far down the table the paper's
        ">90% in the embedding net" line is reached), mean ms per call,
        and call count.
        """
        if not self.totals:
            return "(no sections recorded)"
        width = max(len(k) for k in self.totals)
        lines = [f"{'section':{width}s}  {'time s':>9s}  {'share':>6s}  "
                 f"{'cum %':>6s}  {'ms/call':>9s}  calls"]
        cum = 0.0
        for name, t in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            share = self.share(name) * 100
            cum += share
            calls = self.calls[name]
            per_call_ms = t / calls * 1e3 if calls else 0.0
            lines.append(f"{name:{width}s}  {t:9.4f}  {share:5.1f}%  "
                         f"{cum:5.1f}%  {per_call_ms:9.3f}  {calls}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.totals.clear()
        self.calls.clear()
