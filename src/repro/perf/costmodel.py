"""Roofline execution-time model (DESIGN.md §5).

``time(kernel) = max(flops / eff_flops, bytes / eff_bw)`` per kernel
class, plus tanh wall time (path depends on stage and device), plus a
per-rank framework overhead amortized over the atoms each rank holds —
summed over the step's kernel inventory.

The framework term is what couples performance to the launch
configuration: the A64FX flat-MPI baseline holds only a few hundred
atoms per rank, so graph overhead dominates it, while the optimized
16x3 hybrid quarters the rank count *and* shrinks the overhead itself
(one fused kernel instead of a deep TF graph) — Sec. 3.5.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.variants import Stage
from ..workloads.registry import Workload
from .kernels import step_kernel_costs
from .machine import DeviceSpec

__all__ = [
    "KernelTime",
    "StageTime",
    "stage_breakdown",
    "time_per_atom_us",
    "tts_us_per_step_per_atom",
    "speedup_ladder",
    "PAPER_SINGLE_DEVICE",
]

#: The paper's single-device test configurations:
#: (total atoms, ranks on the device at the BASELINE stage, ranks at
#: optimized stages).  V100 runs one rank per GPU throughout; A64FX runs
#: 48 flat-MPI ranks for the baseline and 16x3 hybrid when optimized.
PAPER_SINGLE_DEVICE = {
    ("V100", "water"): (12_880, 1, 1),
    ("V100", "copper"): (6_912, 1, 1),
    ("A64FX", "water"): (18_432, 48, 16),
    ("A64FX", "copper"): (2_592, 48, 16),
}


def _framework_key(stage: Stage) -> str:
    if stage is Stage.BASELINE:
        return "baseline"
    if stage in (Stage.TABULATION, Stage.FUSION):
        return "tabulated"
    return "optimized"


def _tanh_path(stage: Stage, in_embedding: bool) -> str:
    """Which tanh implementation a kernel uses at this stage."""
    if stage is Stage.BASELINE:
        return "baseline_port"
    if stage is Stage.OTHER_OPT:
        return "tab"
    return "lib"


@dataclass(frozen=True)
class KernelTime:
    name: str
    cls: str
    flop_time_us: float
    byte_time_us: float
    tanh_time_us: float

    @property
    def time_us(self) -> float:
        return max(self.flop_time_us, self.byte_time_us) + self.tanh_time_us

    @property
    def bound(self) -> str:
        return "compute" if self.flop_time_us >= self.byte_time_us else "memory"


@dataclass(frozen=True)
class StageTime:
    stage: Stage
    kernels: tuple
    framework_us_per_atom: float

    @property
    def time_us(self) -> float:
        return (sum(k.time_us for k in self.kernels)
                + self.framework_us_per_atom)

    def kernel_share(self, name: str) -> float:
        return sum(k.time_us for k in self.kernels if k.name == name) / self.time_us

    def tanh_share(self) -> float:
        """Fraction of the step spent in tanh (Sec. 6.2.3's 32 %/20 %)."""
        return sum(k.tanh_time_us for k in self.kernels) / self.time_us


def stage_breakdown(device: DeviceSpec, w: Workload, stage: Stage,
                    atoms_per_rank: float | None = None) -> StageTime:
    """Per-kernel time decomposition of one MD step, per atom."""
    out = []
    for k in step_kernel_costs(w, stage):
        ft = k.flops / device.eff_flops(k.cls) * 1e6
        bt = k.bytes / device.eff_bw(k.cls) * 1e6
        path = _tanh_path(stage, in_embedding=(k.name == "embedding_net"))
        tt = k.tanh_evals * device.tanh_ns[path] * 1e-3
        out.append(KernelTime(k.name, k.cls, ft, bt, tt))
    fw = 0.0
    if atoms_per_rank:
        # Per-rank graph overhead scales with the serialized graph size
        # (Sec. 6.2.4: water's graph is 113 MB against copper's 13 MB).
        fw = (device.framework_us[_framework_key(stage)] * w.tf_graph_mb
              / atoms_per_rank)
    return StageTime(stage, tuple(out), fw)


def time_per_atom_us(device: DeviceSpec, w: Workload, stage: Stage,
                     atoms_per_rank: float | None = None) -> float:
    """Modelled µs per MD step per atom on one device.

    When ``atoms_per_rank`` is omitted, the paper's single-device test
    configuration for this device/workload is assumed.
    """
    if atoms_per_rank is None:
        key = (device.name, w.name)
        if key in PAPER_SINGLE_DEVICE:
            n_atoms, base_ranks, opt_ranks = PAPER_SINGLE_DEVICE[key]
            ranks = base_ranks if stage is Stage.BASELINE else opt_ranks
            atoms_per_rank = n_atoms / ranks
    return stage_breakdown(device, w, stage, atoms_per_rank).time_us


def tts_us_per_step_per_atom(device: DeviceSpec, w: Workload,
                             stage: Stage = Stage.OTHER_OPT) -> float:
    """Table 2's headline quantity (defaults to the fully optimized code)."""
    return time_per_atom_us(device, w, stage)


def speedup_ladder(device: DeviceSpec, w: Workload,
                   n_atoms: int | None = None) -> dict:
    """Figs. 7/8: cumulative speedup over the baseline per stage.

    Every rung runs under the flat launch configuration of the paper's
    step-by-step tests (the MPI+OpenMP comparison of Fig. 8 is a separate
    axis — see :func:`hybrid_time_per_atom_us`).  Uses the paper's
    single-device test sizes unless ``n_atoms`` overrides them.
    """
    key = (device.name, w.name)
    total, base_ranks, _opt_ranks = PAPER_SINGLE_DEVICE.get(
        key, (n_atoms, 1, 1)
    )
    if n_atoms is not None:
        total = n_atoms
    per_rank = total / base_ranks
    base = time_per_atom_us(device, w, Stage.BASELINE, per_rank)
    return {
        stage: base / time_per_atom_us(device, w, stage, per_rank)
        for stage in Stage.ordered()
    }


#: Thread fork/join + load-imbalance penalty by threads-per-rank
#: (Sec. 3.5.4: 16x3 is optimal; 4x12, one rank per CMG, is slower).
THREAD_PENALTY = {1: 1.0, 3: 1.0, 7: 1.05, 12: 1.25}


def hybrid_time_per_atom_us(device: DeviceSpec, w: Workload,
                            scheme, n_atoms: int,
                            stage: Stage = Stage.OTHER_OPT) -> float:
    """Optimized-code step time under an MPI x OpenMP scheme (Fig. 8's
    final rung): kernel time scaled by the thread penalty, framework
    overhead paid once per rank."""
    st = stage_breakdown(device, w, stage, atoms_per_rank=None)
    kernel_us = sum(k.time_us for k in st.kernels)
    penalty = THREAD_PENALTY.get(scheme.threads_per_rank, 1.1)
    fw = device.framework_us[_framework_key(stage)]
    return kernel_us * penalty + fw * scheme.ranks_per_node / n_atoms
