"""One-call validation of the performance model against the paper.

``python -m repro.perf.validate`` regenerates every modelled quantity the
paper reports (the tables behind EXPERIMENTS.md) and prints the
comparison with deviation factors.  :func:`validation_report` returns the
same as structured rows so tests can assert the aggregate quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.variants import Stage
from ..parallel.scheme import FLAT_MPI_A64FX, HYBRID_16X3
from ..workloads import COPPER, WATER
from .costmodel import speedup_ladder
from .machine import A64FX, FUGAKU, SUMMIT, V100
from .memory import MemoryModel, max_atoms_node_scheme
from .power import table2_rows
from .scaling import strong_scaling, weak_scaling

__all__ = ["ValidationRow", "validation_report", "main"]


@dataclass(frozen=True)
class ValidationRow:
    """One paper-quantity vs model-quantity comparison."""

    experiment: str
    quantity: str
    paper: float
    model: float

    @property
    def ratio(self) -> float:
        return self.model / self.paper if self.paper else float("inf")

    @property
    def within(self) -> float:
        """Relative deviation |model/paper - 1|."""
        return abs(self.ratio - 1.0)


def validation_report() -> list:
    """Every modelled paper quantity as :class:`ValidationRow` rows."""
    rows: list = []

    # Table 2 anchors (calibrated) + normalized comparisons (predicted)
    paper_tts = {("Summit", "water"): 2.58, ("Summit", "copper"): 2.87,
                 ("Fugaku", "water"): 4.47, ("Fugaku", "copper"): 5.78}
    for r in table2_rows([WATER, COPPER]):
        rows.append(ValidationRow(
            "Table 2", f"TtS {r.machine} {r.system}",
            paper_tts[(r.machine, r.system)], r.tts_us))
    t2 = {(r.machine, r.system): r for r in table2_rows([WATER, COPPER])}
    rows.append(ValidationRow("Table 2", "A64FX water peak speedup",
                              1.2, t2[("Fugaku", "water")].peak_speedup_vs_v100))
    rows.append(ValidationRow("Table 2", "A64FX water power speedup",
                              1.3, t2[("Fugaku", "water")].power_speedup_vs_v100))
    rows.append(ValidationRow("Table 2", "A64FX copper peak speedup",
                              1.03, t2[("Fugaku", "copper")].peak_speedup_vs_v100))
    rows.append(ValidationRow("Table 2", "A64FX copper power speedup",
                              1.1, t2[("Fugaku", "copper")].power_speedup_vs_v100))

    # Figs. 7/8 ladders
    ladders = {
        ("V100", "water"): {Stage.TABULATION: 2.3, Stage.FUSION: 3.1,
                            Stage.REDUNDANCY: 3.4, Stage.OTHER_OPT: 3.7},
        ("V100", "copper"): {Stage.TABULATION: 3.7, Stage.FUSION: 5.9,
                             Stage.REDUNDANCY: 8.4, Stage.OTHER_OPT: 9.7},
        ("A64FX", "water"): {Stage.TABULATION: 7.2,
                             Stage.REDUNDANCY: 14.0, Stage.OTHER_OPT: 20.5},
        ("A64FX", "copper"): {Stage.TABULATION: 10.3,
                              Stage.REDUNDANCY: 31.5, Stage.OTHER_OPT: 42.5},
    }
    for (dev_name, wl_name), targets in ladders.items():
        dev = V100 if dev_name == "V100" else A64FX
        wl = WATER if wl_name == "water" else COPPER
        lad = speedup_ladder(dev, wl)
        fig = "Fig. 7" if dev_name == "V100" else "Fig. 8"
        for stage, target in targets.items():
            rows.append(ValidationRow(
                fig, f"{dev_name} {wl_name} {stage.value}", target,
                lad[stage]))

    # Figs. 9/10 strong-scaling end points
    strong = [
        ("Fig. 9", SUMMIT, WATER, 41_472_000, 0.4699, 6.0),
        ("Fig. 9", FUGAKU, WATER, 8_294_400, 0.4120, 2.1),
        ("Fig. 10", SUMMIT, COPPER, 13_500_000, 0.3596, 11.2),
        ("Fig. 10", FUGAKU, COPPER, 2_177_280, 0.3276, 4.7),
    ]
    for fig, machine, wl, atoms, eff_t, ns_t in strong:
        p = strong_scaling(machine, wl, atoms, [20, 4560])[-1]
        rows.append(ValidationRow(
            fig, f"{machine.name} {wl.name} efficiency@4560", eff_t,
            p.efficiency))
        rows.append(ValidationRow(
            fig, f"{machine.name} {wl.name} ns/day@4560", ns_t,
            p.ns_per_day))

    # Fig. 11 / Table 1 weak-scaling end points
    summit = weak_scaling(SUMMIT, COPPER, 122_779, [4560])[-1]
    fugaku = weak_scaling(FUGAKU, COPPER, 6_804, [157_986])[-1]
    rows.append(ValidationRow("Fig. 11", "Summit copper atoms [B]", 3.4,
                              summit.atoms / 1e9))
    rows.append(ValidationRow("Fig. 11", "Summit copper TtS [s/step/atom]",
                              1.1e-10, summit.step_seconds / summit.atoms))
    rows.append(ValidationRow("Fig. 11", "Summit copper PFLOPS", 43.7,
                              summit.pflops))
    rows.append(ValidationRow("Fig. 11", "Fugaku copper atoms [B]", 17.3,
                              fugaku.atoms / 1e9))
    rows.append(ValidationRow("Fig. 11", "Fugaku copper TtS [s/step/atom]",
                              4.1e-11, fugaku.step_seconds / fugaku.atoms))
    rows.append(ValidationRow("Fig. 11", "Fugaku copper PFLOPS", 119.0,
                              fugaku.pflops))
    rows.append(ValidationRow("Abstract", "size vs state of the art [x]",
                              134.0, fugaku.atoms / 127e6))

    # Capacity (Secs. 6.1.2 / 6.2.4)
    rows.append(ValidationRow("Sec 6.1.2", "V100 water capacity gain", 6.0,
                              MemoryModel(WATER, V100).capacity_gain()))
    rows.append(ValidationRow("Sec 6.1.2", "V100 copper capacity gain",
                              26.0, MemoryModel(COPPER, V100).capacity_gain()))
    rows.append(ValidationRow(
        "Sec 6.2.4", "A64FX water atoms, flat MPI", 110_592,
        max_atoms_node_scheme(WATER, A64FX, FLAT_MPI_A64FX)))
    rows.append(ValidationRow(
        "Sec 6.2.4", "A64FX water atoms, 16x3", 165_888,
        max_atoms_node_scheme(WATER, A64FX, HYBRID_16X3)))
    return rows


def main() -> int:
    rows = validation_report()
    width = max(len(r.quantity) for r in rows)
    current = None
    worst = 0.0
    for r in rows:
        if r.experiment != current:
            current = r.experiment
            print(f"\n== {current}")
        print(f"  {r.quantity:{width}s}  paper {r.paper:12.4g}  "
              f"model {r.model:12.4g}  x{r.ratio:5.2f}")
        worst = max(worst, r.within)
    n_close = sum(1 for r in rows if r.within <= 0.10)
    print(f"\n{len(rows)} quantities; {n_close} within 10 %, worst "
          f"deviation {worst * 100:.0f} %")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
