"""Per-kernel FLOP/byte inventory for every optimization stage.

Counts are *mechanistic* — derived from the model dimensions exactly as
Secs. 2.2 and 3.2 derive theirs:

* baseline embedding: ``N_m (d1 + 10 d1²)`` FLOPs per atom per pass
  (the paper's formula), two passes (forward + force backward);
* tabulated embedding: ``56 d1`` FLOPs per neighbor per pass;
* padded stages process ``N_m`` neighbor slots, redundancy-removed
  stages only the ~``ρ 4/3 π rcut³`` real ones;
* baseline ``G`` traffic: the embedding matrix and its activations are
  written/read by every TensorFlow op that touches them —
  ``G_TRAFFIC_PASSES`` traversals of ``N_m x M`` doubles per atom (this
  multiple-copy traffic is what makes the baseline memory-bound and is
  the paper's stated >95 % memory-footprint culprit);
* the fused kernel's dominant traffic is the coefficient table itself
  (6 doubles per output channel per neighbor), attenuated by a cache
  reuse factor — nearby ``s`` values hit the same table rows.

Sanity anchor: these counts give ~4-5 MFLOP/atom/step for optimized
copper, matching what the paper's own numbers imply (43.7 PFLOPS x
1.1e-10 s/step/atom = 4.8 MFLOP/atom).

tanh counts are forward-pass evaluations only (the backward pass reuses
the stored activations): ``7 d1`` per neighbor in the embedding net,
``3 x fit_width`` per atom in the fitting net.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.variants import Stage
from ..workloads.registry import Workload

__all__ = [
    "KernelCost",
    "step_kernel_costs",
    "total_flops_per_atom",
    "G_TRAFFIC_PASSES",
    "amdahl_speedup",
    "parallel_efficiency",
    "fitted_serial_fraction",
]

#: Tensor traversals of G-sized data in the baseline TF graph (forward
#: activations, stored copies, backward reads, gradient writes).
#: Calibration constant (DESIGN.md §5).
G_TRAFFIC_PASSES = 12

#: Traversals of G when the tabulated-but-unfused kernel materializes it.
G_TRAFFIC_PASSES_TAB = 3

#: Cache-reuse attenuation of coefficient-table reads: consecutive ``s``
#: values land in neighboring intervals, so most rows are L2-resident.
TABLE_REUSE_TAB = 0.15
TABLE_REUSE_FUSED = 0.27


@dataclass(frozen=True)
class KernelCost:
    """Per-atom per-MD-step cost of one kernel."""

    name: str
    cls: str        #: efficiency class (see DeviceSpec)
    flops: float
    bytes: float
    tanh_evals: float = 0.0


def step_kernel_costs(w: Workload, stage: Stage) -> list:
    """The kernel inventory of one MD step at the given stage."""
    d1, m_out, m_sub, fw = w.d1, w.m_out, w.m_sub, w.fit_width
    n_m = w.n_m
    n_real = w.real_neighbors()
    packed = stage in (Stage.REDUNDANCY, Stage.OTHER_OPT)
    p = n_real if packed else n_m
    descr_w = m_sub * m_out

    kernels: list = []

    # --- environment matrix (ProdEnvMatA) -------------------------------
    # 19 doubles out per neighbor slot (R̃ 4, deriv 12, rij 3), ~80 FLOPs.
    env_factor = 1.0 / 3.0 if stage is Stage.OTHER_OPT else 1.0  # Sec. 3.4.3
    kernels.append(KernelCost(
        "env_mat", "custom",
        flops=80.0 * p * env_factor,
        bytes=19.0 * 8.0 * p * 2.0 * env_factor,
    ))

    # --- embedding -> descriptor contraction ----------------------------
    if stage is Stage.BASELINE:
        kernels.append(KernelCost(
            "embedding_net", "tf",
            flops=2.0 * p * (d1 + 10.0 * d1 * d1),     # fwd + bwd
            bytes=G_TRAFFIC_PASSES * p * m_out * 8.0,
            tanh_evals=p * 7.0 * d1,
        ))
        kernels.append(KernelCost(
            "descriptor_gemm", "gemm",
            flops=3.0 * (2.0 * 4.0 * m_out * p) + 2.0 * (2.0 * 4.0 * descr_w),
            bytes=2.0 * p * (m_out + 4.0) * 8.0,
        ))
    elif stage is Stage.TABULATION:
        kernels.append(KernelCost(
            "embedding_table", "table",
            flops=2.0 * 56.0 * d1 * p,
            bytes=(TABLE_REUSE_TAB * 2.0 * p * m_out * 6.0 * 8.0
                   + G_TRAFFIC_PASSES_TAB * p * m_out * 8.0),
        ))
        kernels.append(KernelCost(
            "descriptor_gemm", "gemm",
            flops=3.0 * (2.0 * 4.0 * m_out * p) + 2.0 * (2.0 * 4.0 * descr_w),
            bytes=2.0 * p * (m_out + 4.0) * 8.0,
        ))
    else:
        # Fused: tabulation + contraction in one kernel; G never exists.
        kernels.append(KernelCost(
            "fused_tab_contract", "fused",
            flops=2.0 * 56.0 * d1 * p + 3.0 * (2.0 * 4.0 * m_out * p),
            bytes=(TABLE_REUSE_FUSED * 2.0 * p * m_out * 6.0 * 8.0
                   + p * 4.0 * 8.0 * 2.0 + 2.0 * 4.0 * m_out * 8.0),
        ))

    # --- fitting net -----------------------------------------------------
    fit_flops_fwd = 2.0 * (descr_w * fw + 2.0 * fw * fw + fw)
    kernels.append(KernelCost(
        "fitting_net", "tf" if stage is Stage.BASELINE else "gemm",
        flops=2.0 * fit_flops_fwd,                    # fwd + input-grad bwd
        bytes=2.0 * (descr_w + 3.0 * fw) * 8.0 * 2.0,
        tanh_evals=3.0 * fw,
    ))

    # --- force + virial production (ProdForceSeA / ProdVirialSeA) -------
    f_factor = 1.0 / 5.0 if stage is Stage.OTHER_OPT else 1.0  # Sec. 3.4.3/3.5.3
    kernels.append(KernelCost(
        "force_virial", "custom",
        flops=2.0 * 60.0 * p * f_factor,
        bytes=2.0 * p * 16.0 * 8.0 * f_factor,
    ))
    return kernels


def total_flops_per_atom(w: Workload, stage: Stage) -> float:
    """Arithmetic work per atom per step (for achieved-FLOPS figures)."""
    return sum(k.flops for k in step_kernel_costs(w, stage))


# --- intra-rank threading (Sec. 3.5.4, Fig. 6 (c)) ----------------------
# The thread ladder benchmarks interpret their measurements through
# Amdahl's law: with every pipeline stage sharded (including the fitting
# net and descriptor GEMMs), the remaining serial fraction is the
# Python-side orchestration between stages, so the speedup at T threads
# exposes that fraction (the complement of THREAD_PENALTY's fork/join
# view in repro.perf.costmodel).  Two ways to obtain it: fit the
# measured speedup (fitted_serial_fraction) or sum the engine's timed
# parallel sections against the wall (measured_serial_fraction).

def amdahl_speedup(n_threads: int, serial_fraction: float) -> float:
    """Ideal fork-join speedup at ``n_threads`` with a serial fraction."""
    if n_threads < 1:
        raise ValueError("need at least one thread")
    f = min(max(float(serial_fraction), 0.0), 1.0)
    return 1.0 / (f + (1.0 - f) / n_threads)


def parallel_efficiency(speedup: float, n_threads: int) -> float:
    """Speedup normalized by the thread count (1.0 = perfect scaling)."""
    if n_threads < 1:
        raise ValueError("need at least one thread")
    return float(speedup) / n_threads


def fitted_serial_fraction(speedup: float, n_threads: int) -> float:
    """Invert Amdahl's law for one measured ``(threads, speedup)`` point."""
    if n_threads <= 1 or speedup <= 0:
        return 1.0
    f = (n_threads / float(speedup) - 1.0) / (n_threads - 1.0)
    return float(min(max(f, 0.0), 1.0))


def measured_serial_fraction(phase_seconds, wall_seconds: float,
                             parallel_prefix: str = "engine.") -> float:
    """Serial fraction from *measured* phase timings, not a speedup fit.

    ``phase_seconds`` maps phase names to seconds (a
    :class:`~repro.perf.profiler.SectionTimer`'s ``totals`` or a trace's
    per-phase aggregate); every phase whose name starts with
    ``parallel_prefix`` counts as parallel work, the rest of the wall is
    serial.  This is the direct measurement the fitted value
    (:func:`fitted_serial_fraction`) estimates — on a host with too few
    cores to observe a speedup it is the only observable one.
    """
    wall = float(wall_seconds)
    if wall <= 0:
        return 1.0
    par = sum(float(v) for k, v in dict(phase_seconds).items()
              if k.startswith(parallel_prefix))
    return float(min(max(1.0 - par / wall, 0.0), 1.0))
