"""Fifth-order polynomial tabulation of the embedding net (Sec. 3.2).

The embedding net is a map ``g : R -> R^M``.  Following the paper's
Weierstrass-approximation argument, the input domain is divided into
``n`` uniform intervals and on each interval every output channel is
replaced by a quintic whose value, first and second derivative match the
network at both interval nodes (a Hermite-quintic fit, giving a C2
piecewise approximation — second-derivative continuity is what keeps MD
forces smooth).

With interval 0.001 the approximation reaches the double-precision floor
(Fig. 2); the paper ships 0.01 as the accuracy/model-size sweet spot and
so do we (:data:`DEFAULT_INTERVAL`).

FLOP accounting matches Sec. 3.2: evaluating the tabulated model costs
``56 * d1`` FLOPs per ``s`` element versus ``d1 + 10 d1^2`` for the
network, an 82 % saving at ``d1 = 32``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .embedding import EmbeddingNet

__all__ = ["EmbeddingTable", "DEFAULT_INTERVAL", "hermite_quintic_coefficients"]

#: Default interval size — the paper's accuracy/size compromise.
DEFAULT_INTERVAL = 0.01


def hermite_quintic_coefficients(g0, d0, s0, g1, d1, s1, h: float) -> np.ndarray:
    """Quintic coefficients matching ``(g, g', g'')`` at both interval ends.

    Works on arrays: inputs are the values/derivatives at the left and
    right node, shape ``(..., M)``; returns coefficients ``a_0..a_5`` of
    ``f(t) = sum_k a_k t^k`` in the *local* coordinate ``t = x - x_left``,
    stacked on a new trailing axis — shape ``(..., M, 6)``.
    """
    h = float(h)
    # Solve in the normalized coordinate u = t/h, then rescale.
    c0 = g0
    c1 = h * d0
    c2 = 0.5 * h * h * s0
    a = g1 - c0 - c1 - c2
    b = h * (d1 - d0) - h * h * s0
    c = h * h * (s1 - s0)
    c5 = 6.0 * a - 3.0 * b + 0.5 * c
    c4 = -15.0 * a + 7.0 * b - c
    c3 = 10.0 * a - 4.0 * b + 0.5 * c
    coeffs = np.stack(
        [c0, c1 / h, c2 / h**2, c3 / h**3, c4 / h**4, c5 / h**5], axis=-1
    )
    return coeffs


@dataclass
class TableInfo:
    """Descriptive metadata for a built table."""

    x_min: float
    x_max: float
    interval: float
    n_intervals: int
    m_out: int


class EmbeddingTable:
    """Piecewise-quintic replacement for an :class:`EmbeddingNet`.

    Coefficients are stored as an array-of-structures ``(n_intervals, M, 6)``
    (the layout Sec. 3.5.1 starts from; :mod:`repro.core.table_layout`
    provides the SVE-friendly transposed layout).  Inputs outside
    ``[x_min, x_max]`` are clamped to the boundary polynomial — the table
    range must cover the physical range of ``s``, which
    :meth:`from_net` guarantees when given the workload's ``s`` bounds.
    """

    def __init__(self, coeffs: np.ndarray, x_min: float, interval: float):
        if coeffs.ndim != 3 or coeffs.shape[2] != 6:
            raise ValueError("coeffs must have shape (n_intervals, M, 6)")
        self.coeffs = np.ascontiguousarray(coeffs)
        self.x_min = float(x_min)
        self.interval = float(interval)
        self.n_intervals = coeffs.shape[0]
        self.m_out = coeffs.shape[1]
        self.x_max = self.x_min + self.n_intervals * self.interval

    # ------------------------------------------------------------------ build
    @classmethod
    def from_net(
        cls,
        net: EmbeddingNet,
        x_min: float,
        x_max: float,
        interval: float = DEFAULT_INTERVAL,
    ) -> "EmbeddingTable":
        """Tabulate ``net`` over ``[x_min, x_max]`` with uniform intervals.

        This is the post-processing step of the paper (model compression);
        it runs once, after which MD never touches the network again.
        """
        if x_max <= x_min:
            raise ValueError("x_max must exceed x_min")
        if interval <= 0:
            raise ValueError("interval must be positive")
        n_intervals = max(1, int(np.ceil((x_max - x_min) / interval)))
        nodes = x_min + interval * np.arange(n_intervals + 1)
        g, d, s = net.evaluate_with_derivatives(nodes)
        coeffs = hermite_quintic_coefficients(
            g[:-1], d[:-1], s[:-1], g[1:], d[1:], s[1:], interval
        )
        return cls(coeffs, x_min, interval)

    # --------------------------------------------------------------- evaluate
    def _locate(self, x: np.ndarray):
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        t = x - self.x_min
        idx = np.floor(t / self.interval).astype(np.intp)
        np.clip(idx, 0, self.n_intervals - 1, out=idx)
        return idx, t - idx * self.interval

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Tabulated ``g(x)`` — shape ``(n, M)``."""
        idx, t = self._locate(x)
        c = self.coeffs[idx]  # (n, M, 6)
        tcol = t[:, None]
        out = c[..., 5]
        for k in (4, 3, 2, 1, 0):
            out = out * tcol + c[..., k]
        return out

    def evaluate_with_deriv(self, x: np.ndarray):
        """Tabulated ``(g(x), g'(x))`` — shapes ``(n, M)`` each.

        The derivative of the quintic feeds the force backward pass, so
        forces of the compressed model are *exact* gradients of its
        (approximate) energy — energy conservation is preserved.
        """
        idx, t = self._locate(x)
        c = self.coeffs[idx]
        tcol = t[:, None]
        val = c[..., 5]
        der = np.zeros_like(val)
        for k in (4, 3, 2, 1, 0):
            der = der * tcol + val
            val = val * tcol + c[..., k]
        # Simultaneous Horner: after the loop, val = f(t) and der = f'(t).
        return val, der

    # ------------------------------------------------------------- accounting
    @property
    def size_bytes(self) -> int:
        """Model size — grows as the interval shrinks (Sec. 3.2)."""
        return self.coeffs.nbytes

    def flops_per_input(self) -> int:
        """Paper's count for the tabulated model: ``56 d1 = 14 M`` per element."""
        return 14 * self.m_out

    @property
    def info(self) -> TableInfo:
        return TableInfo(self.x_min, self.x_max, self.interval,
                         self.n_intervals, self.m_out)
