"""Energy-matching training for the Deep Potential model.

The paper consumes *trained* models (training "takes a few hours to one
week on a single GPU", Sec. 2.2) and optimizes inference only.  This
module closes the loop for the reproduction: a reference-energy trainer
(Adam on the hand-written weight gradients the network layers already
accumulate) that can fit the synthetic DP model to any target potential
— the examples distill a Lennard-Jones surface into it, after which the
whole compression/fusion pipeline applies to a *meaningfully* trained
model.

Scope: energy matching only.  Force matching needs second derivatives of
the network (gradients of gradients), which the inference-focused
backward passes deliberately do not implement.
"""

from __future__ import annotations

import numpy as np

from .descriptor import descriptor_backward, descriptor_forward
from .model import DPModel
from .ops import prod_env_mat_a

__all__ = ["EnergyTrainer", "AdamState"]


class AdamState:
    """Adam moments for one parameter array."""

    def __init__(self, shape):
        self.m = np.zeros(shape)
        self.v = np.zeros(shape)

    def update(self, grad, lr, t, beta1=0.9, beta2=0.999, eps=1e-8):
        self.m = beta1 * self.m + (1 - beta1) * grad
        self.v = beta2 * self.v + (1 - beta2) * grad * grad
        m_hat = self.m / (1 - beta1**t)
        v_hat = self.v / (1 - beta2**t)
        return lr * m_hat / (np.sqrt(v_hat) + eps)


class EnergyTrainer:
    """Fit a :class:`DPModel`'s parameters to reference total energies.

    Loss: mean squared *per-atom* energy error over the batch,
    ``L = mean_c ((E_c - E_c^ref) / N_c)^2``.

    Parameters
    ----------
    model:
        The baseline model to train (weights updated in place; compress
        afterwards with :meth:`CompressedDPModel.compress`).
    lr:
        Adam learning rate.
    """

    def __init__(self, model: DPModel, lr: float = 1e-3):
        self.model = model
        self.lr = lr
        self.t = 0
        self._nets = list(model.embeddings) + list(model.fittings)
        self._adam = [
            [AdamState(layer.W.shape) for layer in net.layers]
            for net in self._nets
        ]
        self._adam_b = [
            [AdamState(layer.b.shape) for layer in net.layers]
            for net in self._nets
        ]

    # ---------------------------------------------------------------- energy
    def _forward(self, nd):
        """Forward pass to total energy, keeping every cache."""
        model, spec = self.model, self.model.spec
        descrpt, _, _ = prod_env_mat_a(
            nd.ext_coords, nd.centers, nd.nlist, spec.rcut_smth, spec.rcut
        )
        s_flat = descrpt[..., 0].reshape(-1)
        pair_types = model.neighbor_types(nd.ext_types, nd.nlist).reshape(-1)
        g_flat, emb_caches = model._embed_forward(s_flat, pair_types)
        width = nd.nlist.shape[1]
        g = g_flat.reshape(nd.n_local, width, spec.m_out)
        descr, t_cache = descriptor_forward(descrpt, g, spec.m_sub, spec.n_m)

        center_types = np.asarray(nd.ext_types)[nd.centers]
        energies = np.empty(nd.n_local)
        fit_caches = []
        for ct, net in enumerate(model.fittings):
            idx = np.nonzero(center_types == ct)[0]
            if idx.size == 0:
                fit_caches.append((idx, None))
                continue
            e, caches = net.energies_with_cache(descr[idx])
            energies[idx] = e + model.energy_bias[ct]
            fit_caches.append((idx, caches))
        return {
            "descrpt": descrpt, "g": g, "t": t_cache, "descr": descr,
            "emb_caches": emb_caches, "fit_caches": fit_caches,
            "energy": float(energies.sum()),
        }

    def _backward(self, fwd, seed: float, nd) -> None:
        """Accumulate weight gradients of ``seed * E`` (no zeroing)."""
        model, spec = self.model, self.model.spec
        n = nd.n_local
        d_descr = np.zeros_like(fwd["descr"])
        for net, (idx, caches) in zip(model.fittings, fwd["fit_caches"]):
            if caches is None:
                continue
            dy = np.full((idx.size, 1), seed)
            d_descr[idx] = net.backward_input(dy, caches)
        _d_r, d_g = descriptor_backward(
            d_descr, fwd["t"], fwd["descrpt"], fwd["g"], spec.m_sub, spec.n_m
        )
        d_g_flat = d_g.reshape(-1, spec.m_out)
        for net, (idx, caches) in zip(model.embeddings, fwd["emb_caches"]):
            if caches is None or (hasattr(idx, "size") and idx.size == 0):
                continue
            net.backward(d_g_flat[idx], caches)

    # ----------------------------------------------------------------- train
    def calibrate(self, batch) -> None:
        """Data-driven preconditioning, exactly as DeePMD-kit does it:

        * per-type descriptor statistics (davg/dstd) standardize the
          fitting-net input — without this the descriptor's tiny relative
          variance makes the net insensitive to the configuration;
        * the per-type energy bias is solved by least squares over the
          type counts, so the network only fits the (small) residual and
          never saturates trying to output the bulk cohesive energy.
        """
        n_types = self.model.spec.n_types
        per_type: dict = {}
        counts = np.zeros((len(batch), n_types))
        for k, (nd, _e_ref) in enumerate(batch):
            fwd = self._forward(nd)
            center_types = np.asarray(nd.ext_types)[nd.centers]
            for ct in range(n_types):
                idx = np.nonzero(center_types == ct)[0]
                counts[k, ct] = idx.size
                if idx.size:
                    per_type.setdefault(ct, []).append(fwd["descr"][idx])
        for ct, parts in per_type.items():
            d = np.concatenate(parts, axis=0)
            self.model.fittings[ct].set_input_stats(d.mean(axis=0),
                                                    d.std(axis=0))
        # Bias least squares with the new stats in place (the net output
        # changed when the standardization did).
        raw = np.empty(len(batch))
        for k, (nd, _e_ref) in enumerate(batch):
            fwd = self._forward(nd)
            center_types = np.asarray(nd.ext_types)[nd.centers]
            raw[k] = fwd["energy"] - self.model.energy_bias[
                center_types].sum()
        targets = np.array([e for _nd, e in batch]) - raw
        bias, *_ = np.linalg.lstsq(counts, targets, rcond=None)
        self.model.energy_bias[:] = bias

    def predict(self, nd) -> float:
        """Current total energy of one configuration."""
        return self._forward(nd)["energy"]

    def loss_and_grad(self, batch) -> float:
        """MSE per-atom loss and its accumulated weight gradients.

        ``batch`` is a sequence of ``(NeighborData, reference_energy)``.
        """
        for net in self._nets:
            net.zero_grad()
        loss = 0.0
        m = len(batch)
        for nd, e_ref in batch:
            fwd = self._forward(nd)
            diff = (fwd["energy"] - e_ref) / nd.n_local
            loss += diff * diff / m
            seed = 2.0 * diff / (nd.n_local * m)
            self._backward(fwd, seed, nd)
        return loss

    def step(self, batch) -> float:
        """One Adam step over a batch; returns the pre-step loss."""
        loss = self.loss_and_grad(batch)
        self.t += 1
        for net, adam_w, adam_b in zip(self._nets, self._adam, self._adam_b):
            for layer, aw, ab in zip(net.layers, adam_w, adam_b):
                layer.W -= aw.update(layer.dW, self.lr, self.t)
                layer.b -= ab.update(layer.db, self.lr, self.t)
        return loss

    def fit(self, batch, n_steps: int = 200, verbose: bool = False,
            calibrate: bool = True):
        """Run ``n_steps`` of full-batch Adam; returns the loss history.

        ``calibrate=True`` (default) sets descriptor statistics from the
        batch before the first step.
        """
        if calibrate:
            self.calibrate(batch)
        history = []
        for k in range(n_steps):
            loss = self.step(batch)
            history.append(loss)
            if verbose and (k % max(1, n_steps // 10) == 0):
                print(f"step {k:5d}  loss {loss:.3e}")
        return history
