"""The radial-only ``se_r`` descriptor family.

DeePMD-kit ships two smooth-edition descriptors: ``se_a`` (the paper's,
with angular information through the full environment matrix) and the
cheaper ``se_r``, which embeds only the radial channel:

    ``D_i = (1/N_m) sum_j g(s(r_ij))  ∈ R^M``

— permutation/rotation/translation invariant by construction, roughly
``4x`` fewer descriptor FLOPs, and (the point of carrying it here) the
paper's whole optimization ladder applies verbatim: the same fifth-order
tables replace ``g``, the "fusion" is a segment *mean* instead of an
outer-product accumulation, and padded slots are skipped identically.

:class:`SeRModel` is a complete energy/force model over this descriptor,
sharing the embedding/fitting building blocks and the packed operators.
"""

from __future__ import annotations

import numpy as np

from .embedding import EmbeddingNet
from .fitting import FittingNet
from .fused import segment_sum
from .model import EvalResult, ModelSpec
from .network import init_rng
from .ops import (
    prod_env_mat_a_packed,
    prod_force_se_a_packed,
    prod_virial_se_a_packed,
)
from .tabulation import DEFAULT_INTERVAL, EmbeddingTable

__all__ = ["SeRModel"]


class SeRModel:
    """Radial (``se_r``) Deep Potential model, packed dataflow only.

    Parameters mirror :class:`~repro.core.model.ModelSpec`; the descriptor
    width equals the embedding output ``M = 4 d1`` (no ``M<`` sub-matrix).
    """

    def __init__(self, spec: ModelSpec, compressed: bool = False,
                 interval: float = DEFAULT_INTERVAL, x_max: float = 2.5):
        self.spec = spec
        rng = init_rng(spec.seed + 7)
        self.embeddings = [EmbeddingNet(spec.d1, rng)
                           for _ in range(spec.n_types)]
        self.fittings = [
            FittingNet(spec.m_out, spec.fit_width, spec.fit_hidden, rng)
            for _ in range(spec.n_types)
        ]
        self.energy_bias = np.zeros(spec.n_types)
        self.tables = None
        if compressed:
            self.compress(interval=interval, x_max=x_max)

    def compress(self, interval: float = DEFAULT_INTERVAL,
                 x_max: float = 2.5) -> "SeRModel":
        """Tabulate the embedding nets (same Sec. 3.2 machinery)."""
        self.tables = [EmbeddingTable.from_net(net, 0.0, x_max, interval)
                       for net in self.embeddings]
        return self

    # ------------------------------------------------------------- embedding
    def _embed(self, s: np.ndarray, want_deriv: bool):
        """``g(s)`` (and optionally ``g'(s)``) via net or table."""
        if self.tables is not None:
            table = self.tables[0]
            if want_deriv:
                return table.evaluate_with_deriv(s)
            return table.evaluate(s), None
        net = self.embeddings[0]
        if want_deriv:
            g, g1, _ = net.evaluate_with_derivatives(s)
            return g, g1
        return net.evaluate(s), None

    def _embed_by_type(self, s, pair_types, want_deriv):
        if self.spec.n_types == 1:
            return self._embed(s, want_deriv)
        g = np.empty((s.size, self.spec.m_out))
        g1 = np.empty_like(g) if want_deriv else None
        for t in range(self.spec.n_types):
            idx = np.nonzero(pair_types == t)[0]
            if idx.size == 0:
                continue
            src = self.tables[t] if self.tables is not None else None
            if src is not None:
                if want_deriv:
                    g[idx], g1[idx] = src.evaluate_with_deriv(s[idx])
                else:
                    g[idx] = src.evaluate(s[idx])
            else:
                net = self.embeddings[t]
                if want_deriv:
                    gi, g1i, _ = net.evaluate_with_derivatives(s[idx])
                    g[idx], g1[idx] = gi, g1i
                else:
                    g[idx] = net.evaluate(s[idx])
        return g, g1

    # -------------------------------------------------------------- evaluate
    def evaluate_packed(self, coords, atom_types, centers, indices,
                        indptr) -> EvalResult:
        """Energy, forces and virial from packed (CSR) neighbor lists."""
        spec = self.spec
        atom_types = np.asarray(atom_types)
        indices = np.asarray(indices, dtype=np.intp)
        indptr = np.asarray(indptr, dtype=np.intp)
        n = len(centers)
        n_total = coords.shape[0]

        rows, deriv, rij = prod_env_mat_a_packed(
            coords, centers, indices, indptr, spec.rcut_smth, spec.rcut
        )
        s = rows[:, 0]
        pair_types = atom_types[indices]

        g, g1 = self._embed_by_type(s, pair_types, want_deriv=True)
        # D_i = mean_j g(s_ij): segment sum / N_m (fixed normalization so
        # padded and packed agree, exactly as in se_a).
        descr = segment_sum(g, indptr) / float(spec.n_m)

        center_types = atom_types[np.asarray(centers)]
        energies = np.empty(n)
        d_descr = np.empty_like(descr)
        for t, net in enumerate(self.fittings):
            idx = np.nonzero(center_types == t)[0]
            if idx.size == 0:
                continue
            e, caches = net.energies_with_cache(descr[idx])
            energies[idx] = e + self.energy_bias[t]
            net.zero_grad()
            d_descr[idx] = net.input_gradient(caches, idx.size)

        # backward: dE/ds_p = dD_i/ds_p · dE/dD_i = g'(s_p) · dE/dD_i / Nm
        counts = np.diff(indptr)
        pair_atom = np.repeat(np.arange(n), counts)
        ds = np.einsum("pm,pm->p", g1, d_descr[pair_atom]) / float(spec.n_m)
        net_deriv = np.zeros_like(rows)
        net_deriv[:, 0] = ds

        forces = prod_force_se_a_packed(net_deriv, deriv, centers, indices,
                                        indptr, n_total)
        virial = prod_virial_se_a_packed(net_deriv, deriv, rij)
        return EvalResult(
            energy=float(energies.sum()),
            atomic_energies=energies,
            forces=forces,
            virial=virial,
        )

    # ------------------------------------------------------------- analytics
    def descriptor_flops_per_pair(self) -> int:
        """Embedding + mean: roughly 1/(8 M<) of se_a's contraction work."""
        d1 = self.spec.d1
        base = 56 * d1 if self.tables is not None else d1 + 10 * d1 * d1
        return base + self.spec.m_out
