"""Mixed-precision evaluation (Table 1's mixed rows; the paper's future work).

The 2020 baseline shipped mixed-single and mixed-half variants (275
PFLOPS for mixed-half in Table 1); the optimized paper version reports
double precision only and notes that "the mixed-precision versions of
code still has accuracy problems and will be our future work".

This module implements the *mixed-single* scheme for the compressed
model: coefficient tables, network weights, and per-pair data are cast
to float32 while index arithmetic and the final energy reduction stay in
double — and provides the accuracy study that quantifies exactly the
problem the paper alludes to (force errors around 1e-5 relative instead
of the tabulated model's 1e-13).
"""

from __future__ import annotations

import numpy as np

from .backend import EvalRequest, backend_for
from .compressed import CompressedDPModel
from .fitting import FittingNet
from .table_layout import SoAEmbeddingTable
from .tabulation import EmbeddingTable

__all__ = ["to_single_precision", "precision_study"]


def _cast_table(table, dtype):
    """Cast either table layout, preserving it (AoS→AoS, SoA→SoA)."""
    if isinstance(table, SoAEmbeddingTable):
        return table.astype(dtype)
    return EmbeddingTable(table.coeffs.astype(dtype), table.x_min,
                          table.interval)


def _cast_fitting(net: FittingNet, dtype) -> FittingNet:
    clone = FittingNet(net.n_in, net.width, net.n_hidden)
    for src, dst in zip(net.layers, clone.layers):
        dst.W = src.W.astype(dtype)
        dst.b = src.b.astype(dtype)
        dst.dW = np.zeros_like(dst.W)
        dst.db = np.zeros_like(dst.b)
    clone.input_shift = net.input_shift.astype(dtype)
    clone.input_scale = net.input_scale.astype(dtype)
    return clone


def to_single_precision(model: CompressedDPModel,
                        accumulate: str | None = None) -> CompressedDPModel:
    """A float32 copy of a compressed model (tables + fitting nets).

    Evaluate it with float32 coordinates to keep the whole pipeline in
    single precision::

        f32 = to_single_precision(compressed)
        res = f32.evaluate_packed(coords.astype(np.float32), ...)

    The copy keeps the source model's table layout, chunk length and
    per-type shard weights.  ``accumulate`` overrides the reduction
    scheme: ``"native"`` sums in float32 end-to-end (the fast path),
    ``"f64"`` keeps the reductions in double (the mixed scheme);
    ``None`` inherits the source model's setting.
    """
    tables = [_cast_table(t, np.float32) for t in model.tables]
    fittings = [_cast_fitting(f, np.float32) for f in model.fittings]
    return CompressedDPModel(
        model.spec, tables, fittings,
        model.energy_bias.astype(np.float32), chunk=model.chunk,
        layout=model.layout, type_weights=model.type_weights,
        accumulate=accumulate if accumulate is not None else model.accumulate,
    )


def precision_study(model: CompressedDPModel, neighbors,
                    engine=None) -> dict:
    """Quantify the single-precision accuracy gap on one configuration.

    Returns per-atom energy deviation and max/RMS force deviations of
    the float32 pipeline against the float64 one — the numbers behind
    the paper's "accuracy problems" remark.  Both evaluations go through
    the resolved :class:`~repro.core.backend.ForceBackend`; the float32
    leg is the same request recast via ``EvalRequest.cast``.
    """
    req = EvalRequest.from_neighbors(neighbors, engine=engine)
    ref = backend_for(model).evaluate(req)
    f32 = to_single_precision(model)
    res = backend_for(f32).evaluate(req.cast(np.float32))
    df = res.forces - ref.forces
    scale = float(np.abs(ref.forces).max()) or 1.0
    return {
        "energy_per_atom": abs(res.energy - ref.energy) / neighbors.n_local,
        "force_max": float(np.abs(df).max()),
        "force_rms": float(np.sqrt(np.mean(df * df))),
        "force_rel": float(np.abs(df).max()) / scale,
        "bytes_saved_fraction": 0.5,
    }
