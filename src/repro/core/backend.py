"""Force-evaluation backends: the one contract every driver goes through.

The paper's Fig. 6 (c) scheme works because every rank and thread sees a
single uniform inference interface — the fused kernel.  This module is
that interface for the reproduction: a :class:`ForceBackend` adapter
wraps each model family's native evaluation entry point behind one
``evaluate(EvalRequest) -> EvalResult`` call, and :func:`backend_for`
resolves the right adapter **once at construction**.  Capability probing
(``hasattr(model, "evaluate_packed")``, the ``supports_engine`` flag)
lives only here; the MD driver, the distributed driver, the model
committee and the precision harness all consume the resolved backend.

Shipped adapters:

* :class:`PackedBackend` — models with a packed (CSR) evaluation.  When
  the model advertises ``supports_engine`` the adapter forwards the
  request's :class:`~repro.parallel.engine.ThreadedEngine`, kernel
  counters and cached pair→atom map, so the fused kernels run sharded;
  otherwise it passes the five positional CSR arrays only (e.g.
  :class:`~repro.core.descriptor_r.SeRModel`).
* :class:`PaddedFallbackBackend` — models with only the padded
  ``evaluate(coords, types, centers, nlist)`` entry point (the baseline
  :class:`~repro.core.model.DPModel`).  The engine, if any, is ignored:
  the padded pipeline has no sharded kernels.

Custom model families plug in through :func:`register_backend`::

    from repro.core.backend import register_backend

    @register_backend(lambda m: isinstance(m, MyModel))
    class MyBackend:
        name = "my-backend"

        def __init__(self, model):
            self.model = model

        def evaluate(self, request):
            ...  # return an EvalResult

Registered matchers are consulted (newest first) before the built-in
``evaluate_packed``/``evaluate`` resolution rules.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from .model import EvalResult

__all__ = [
    "EvalRequest",
    "EvalResult",
    "ForceBackend",
    "PackedBackend",
    "PaddedFallbackBackend",
    "backend_for",
    "register_backend",
    "unregister_backend",
]


@dataclass
class EvalRequest:
    """Everything one force evaluation needs, in one context object.

    Built from a :class:`~repro.md.neighbor.NeighborData` via
    :meth:`from_neighbors`; the packed CSR arrays (``indices`` /
    ``indptr``) and the padded ``nlist`` views coexist so any backend
    can serve the request.
    """

    coords: np.ndarray            #: extended (local + ghost) positions
    types: np.ndarray             #: extended per-atom type indices
    centers: np.ndarray           #: indices of the local (center) atoms
    indices: np.ndarray | None = None   #: packed neighbor indices (CSR)
    indptr: np.ndarray | None = None    #: CSR row pointer, len n_local+1
    nlist: np.ndarray | None = None     #: padded (n, N_m) neighbor list
    pair_atom: np.ndarray | None = None  #: cached pair→atom map
    counters: Any = None          #: optional KernelCounters sink
    engine: Any = None            #: optional ThreadedEngine
    tracer: Any = None            #: optional Tracer (span attribution)
    precision: Any = None         #: optional dtype the coords are cast to
    chunk: int | None = None      #: optional fused-kernel chunk override
    #: Optional batch boundaries: ``(atom_lo, atom_hi)`` ranges
    #: partitioning ``centers`` into independent member systems whose
    #: CSR arrays were concatenated (the serving layer's batch packing).
    #: Only models advertising ``supports_splits`` can serve such a
    #: request; per-member energy/virial land in ``extras["splits"]``.
    splits: Any = None

    @classmethod
    def from_neighbors(cls, neighbors, *, engine=None, counters=None,
                       tracer=None, precision=None,
                       chunk=None) -> "EvalRequest":
        """Build a request from a built neighbor structure."""
        return cls(
            coords=neighbors.ext_coords,
            types=neighbors.ext_types,
            centers=neighbors.centers,
            indices=neighbors.indices,
            indptr=neighbors.indptr,
            nlist=neighbors.nlist,
            pair_atom=neighbors.pair_atom,
            counters=counters,
            engine=engine,
            tracer=tracer,
            precision=precision,
            chunk=chunk,
        )

    def cast(self, dtype) -> "EvalRequest":
        """A copy of this request with coordinates in ``dtype``.

        The precision harness evaluates the same neighbor structure in
        float64 and float32; index arrays are never cast.
        """
        return replace(self, precision=np.dtype(dtype))

    def resolve_coords(self) -> np.ndarray:
        """Coordinates honoring :attr:`precision` (no copy if already so)."""
        if self.precision is None:
            return self.coords
        return np.asarray(self.coords, dtype=self.precision)


@runtime_checkable
class ForceBackend(Protocol):
    """The uniform inference contract (the paper's fused-kernel interface).

    A backend owns a resolved model and turns an :class:`EvalRequest`
    into an :class:`~repro.core.model.EvalResult` whose ``forces`` cover
    the *extended* (local + ghost) atoms — folding ghost contributions
    back is the caller's (neighbor structure's) job.
    """

    name: str
    model: Any

    def evaluate(self, request: EvalRequest) -> EvalResult:
        ...


class _BackendBase:
    """Shared plumbing: model handle, spec passthrough, repr."""

    name = "backend"

    def __init__(self, model):
        self.model = model

    @property
    def spec(self):
        return self.model.spec

    @property
    def rcut(self) -> float:
        return self.model.spec.rcut

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"model={type(self.model).__name__})")


class PackedBackend(_BackendBase):
    """Adapter for models with a packed (CSR) evaluation path.

    ``accepts_engine`` is resolved once, from the model's
    ``supports_engine`` flag: an engine-capable model must accept the
    ``counters=`` / ``engine=`` / ``pair_atom=`` keywords on
    ``evaluate_packed`` (the :class:`~repro.core.compressed.
    CompressedDPModel` signature); a plain packed model receives only
    the five positional CSR arrays.
    """

    def __init__(self, model, accepts_engine: bool | None = None):
        super().__init__(model)
        if accepts_engine is None:
            accepts_engine = bool(getattr(model, "supports_engine", False))
        self.accepts_engine = bool(accepts_engine)
        self.name = "packed" if self.accepts_engine else "packed-serial"

    def evaluate(self, request: EvalRequest) -> EvalResult:
        if request.indices is None or request.indptr is None:
            raise ValueError(
                "PackedBackend needs the CSR neighbor arrays "
                "(indices/indptr) on the request")
        coords = request.resolve_coords()
        if request.splits is not None and not getattr(
                self.model, "supports_splits", False):
            raise ValueError(
                f"{type(self.model).__name__} cannot serve a batched "
                f"(splits) request; the serving layer must fall back to "
                f"single-point evaluation for this model family")
        if self.accepts_engine:
            kwargs = dict(
                counters=request.counters, engine=request.engine,
                pair_atom=request.pair_atom,
            )
            # Only engine-capable models take the chunk override; pass it
            # solely when set so models predating the knob keep working.
            if request.chunk is not None:
                kwargs["chunk"] = request.chunk
            if request.splits is not None:
                kwargs["splits"] = request.splits
            return self.model.evaluate_packed(
                coords, request.types, request.centers,
                request.indices, request.indptr, **kwargs,
            )
        if request.splits is not None:
            raise ValueError(
                f"backend {self.name!r} cannot serve a batched (splits) "
                f"request: the serial packed signature takes no batch "
                f"boundaries")
        return self.model.evaluate_packed(
            coords, request.types, request.centers,
            request.indices, request.indptr,
        )


class PaddedFallbackBackend(_BackendBase):
    """Adapter for models with only the padded evaluation path.

    The baseline :class:`~repro.core.model.DPModel` materializes ``G``
    over padded ``(n, N_m)`` neighbor slots; it has no sharded kernels,
    so a request's engine is deliberately ignored.
    """

    name = "padded"

    def evaluate(self, request: EvalRequest) -> EvalResult:
        if request.splits is not None:
            raise ValueError(
                "the padded fallback cannot serve a batched (splits) "
                "request; the serving layer must fall back to "
                "single-point evaluation for this model family")
        if request.nlist is None:
            raise ValueError(
                "PaddedFallbackBackend needs the padded nlist on the "
                "request")
        return self.model.evaluate(
            request.resolve_coords(), request.types, request.centers,
            request.nlist,
        )


#: Custom (matcher, factory) pairs, consulted newest-first.
_REGISTRY: list[tuple[Callable[[Any], bool], Callable[[Any], Any]]] = []


def register_backend(matcher: Callable[[Any], bool], factory=None):
    """Register a custom backend factory for models ``matcher`` accepts.

    Use directly (``register_backend(matcher, factory)``) or as a class
    decorator (``@register_backend(matcher)``).  ``factory`` is called
    with the model and must return a :class:`ForceBackend`.  Returns the
    factory, so decorated classes stay usable by name.
    """

    def add(factory):
        _REGISTRY.append((matcher, factory))
        return factory

    if factory is None:
        return add
    return add(factory)


def unregister_backend(factory) -> bool:
    """Remove every registration using ``factory``; True if any was.

    The counterpart of :func:`register_backend` for opt-in backends that
    can be turned off again (e.g. the compiled backend of
    :mod:`repro.perf.compiled`).
    """
    before = len(_REGISTRY)
    _REGISTRY[:] = [(m, f) for m, f in _REGISTRY if f is not factory]
    return len(_REGISTRY) != before


def clear_registered_backends() -> None:
    """Drop all custom registrations (test isolation helper)."""
    _REGISTRY.clear()


def backend_for(model) -> ForceBackend:
    """Resolve the backend for ``model`` — the only capability probe.

    Custom registrations win (newest first); then models with a packed
    entry point get :class:`PackedBackend` (engine-capable iff the
    model advertises ``supports_engine``), models with only a padded
    entry point get :class:`PaddedFallbackBackend`.
    """
    for matcher, factory in reversed(_REGISTRY):
        if matcher(model):
            return factory(model)
    if hasattr(model, "evaluate_packed"):
        return PackedBackend(model)
    if hasattr(model, "evaluate"):
        return PaddedFallbackBackend(model)
    raise TypeError(
        f"{type(model).__name__} exposes neither evaluate_packed nor "
        f"evaluate; register a custom backend with register_backend()")
