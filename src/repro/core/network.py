"""Dense network building blocks with hand-written forward/backward passes.

DeePMD-kit builds its nets from TensorFlow primitives; this reproduction
implements the same three layer types directly in NumPy:

* :class:`LinearLayer` — affine output layer (fitting-net head),
* :class:`DenseLayer` — ``tanh(x W + b)`` (first embedding layer, Eq. 4),
* :class:`ResidualDenseLayer` — shortcut + ``tanh(x W + b)`` where the
  shortcut is the identity when the width is preserved (fitting net) or
  ``(x, x)`` duplication when the width doubles (embedding net, Eq. 5).

Each layer exposes ``forward(x)`` returning ``(y, cache)`` and
``backward(dy, cache)`` returning ``dx`` (and stashing parameter
gradients on the layer, which the optional trainer consumes).  Batched
inputs are 2-D ``(batch, features)`` float64 arrays.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .activation import dtanh

__all__ = [
    "LinearLayer",
    "DenseLayer",
    "ResidualDenseLayer",
    "MLP",
    "init_rng",
]


def init_rng(seed: int) -> np.random.Generator:
    """Deterministic generator used for all synthetic model weights."""
    return np.random.default_rng(seed)


class LinearLayer:
    """Affine layer ``y = x W + b``."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator, scale: float = 1.0):
        std = scale / np.sqrt(n_in)
        self.W = rng.normal(0.0, std, size=(n_in, n_out))
        self.b = rng.normal(0.0, 0.01 * scale, size=(n_out,))
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)

    @property
    def n_in(self) -> int:
        return self.W.shape[0]

    @property
    def n_out(self) -> int:
        return self.W.shape[1]

    def forward(self, x: np.ndarray):
        return x @ self.W + self.b, x

    def backward(self, dy: np.ndarray, cache) -> np.ndarray:
        x = cache
        self.dW += x.T @ dy
        self.db += dy.sum(axis=0)
        return dy @ self.W.T

    def backward_dx(self, dy: np.ndarray, cache) -> np.ndarray:
        """Input gradient only — no parameter-gradient accumulation.

        Identical arithmetic to :meth:`backward`'s ``dx`` but touches no
        shared layer state, so concurrent workers (the threaded engine's
        sharded fitting pass) can run it on the same layer objects.
        """
        return dy @ self.W.T

    def parameters(self):
        return [(self.W, self.dW), (self.b, self.db)]

    @property
    def n_params(self) -> int:
        return self.W.size + self.b.size


class DenseLayer(LinearLayer):
    """Fully-connected layer with tanh activation (Eq. 4)."""

    def __init__(self, n_in, n_out, rng, scale: float = 1.0,
                 activation: Callable[[np.ndarray], np.ndarray] | None = None):
        super().__init__(n_in, n_out, rng, scale)
        # The activation may be swapped for a TanhTable (Sec. 3.5.3); the
        # backward pass always uses the analytic derivative in terms of the
        # forward value, which is what makes the table a drop-in.
        self._act = activation if activation is not None else np.tanh

    def forward(self, x: np.ndarray):
        t = self._act(x @ self.W + self.b)
        return t, (x, t)

    def backward(self, dy: np.ndarray, cache) -> np.ndarray:
        x, t = cache
        dz = dy * dtanh(t)
        self.dW += x.T @ dz
        self.db += dz.sum(axis=0)
        return dz @ self.W.T

    def backward_dx(self, dy: np.ndarray, cache) -> np.ndarray:
        _, t = cache
        return (dy * dtanh(t)) @ self.W.T

    def set_activation(self, act: Callable[[np.ndarray], np.ndarray]) -> None:
        self._act = act


class ResidualDenseLayer(DenseLayer):
    """Dense tanh layer with a shortcut connection (Eq. 5).

    * ``n_out == n_in`` — identity shortcut: ``y = x + tanh(x W + b)``.
    * ``n_out == 2 n_in`` — duplication shortcut: ``y = (x, x) + tanh(...)``,
      the width-doubling form used inside the embedding net.
    """

    def __init__(self, n_in, n_out, rng, scale: float = 1.0,
                 activation: Callable[[np.ndarray], np.ndarray] | None = None):
        if n_out not in (n_in, 2 * n_in):
            raise ValueError(
                f"shortcut requires n_out == n_in or 2*n_in, got {n_in}->{n_out}"
            )
        super().__init__(n_in, n_out, rng, scale, activation)
        self.doubling = n_out == 2 * n_in

    def forward(self, x: np.ndarray):
        t = self._act(x @ self.W + self.b)
        if self.doubling:
            y = np.concatenate([x, x], axis=1) + t
        else:
            y = x + t
        return y, (x, t)

    def backward(self, dy: np.ndarray, cache) -> np.ndarray:
        x, t = cache
        dz = dy * dtanh(t)
        self.dW += x.T @ dz
        self.db += dz.sum(axis=0)
        dx = dz @ self.W.T
        if self.doubling:
            n = x.shape[1]
            dx += dy[:, :n] + dy[:, n:]
        else:
            dx += dy
        return dx

    def backward_dx(self, dy: np.ndarray, cache) -> np.ndarray:
        x, t = cache
        dz = dy * dtanh(t)
        dx = dz @ self.W.T
        if self.doubling:
            n = x.shape[1]
            dx += dy[:, :n] + dy[:, n:]
        else:
            dx += dy
        return dx


class MLP:
    """A stack of layers with combined forward/backward helpers."""

    def __init__(self, layers: Sequence):
        self.layers = list(layers)

    @property
    def n_in(self) -> int:
        return self.layers[0].n_in

    @property
    def n_out(self) -> int:
        return self.layers[-1].n_out

    def forward(self, x: np.ndarray):
        caches = []
        for layer in self.layers:
            x, cache = layer.forward(x)
            caches.append(cache)
        return x, caches

    def __call__(self, x: np.ndarray) -> np.ndarray:
        y, _ = self.forward(x)
        return y

    def backward(self, dy: np.ndarray, caches) -> np.ndarray:
        for layer, cache in zip(reversed(self.layers), reversed(caches)):
            dy = layer.backward(dy, cache)
        return dy

    def backward_dx(self, dy: np.ndarray, caches) -> np.ndarray:
        """Reverse pass computing input gradients only (thread-safe).

        Same ``dx`` arithmetic as :meth:`backward` but no ``dW``/``db``
        accumulation — the layers are read, never written, so any number
        of workers may traverse the same net concurrently.
        """
        for layer, cache in zip(reversed(self.layers), reversed(caches)):
            dy = layer.backward_dx(dy, cache)
        return dy

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.dW[...] = 0.0
            layer.db[...] = 0.0

    def parameters(self):
        for layer in self.layers:
            yield from layer.parameters()

    @property
    def n_params(self) -> int:
        return sum(layer.n_params for layer in self.layers)

    def set_activation(self, act) -> None:
        """Swap the activation (e.g. for a TanhTable) on every tanh layer."""
        for layer in self.layers:
            if isinstance(layer, DenseLayer):
                layer.set_activation(act)
