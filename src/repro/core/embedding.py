"""The embedding net (Eqs. 3-5) and its scalar-input derivatives.

The embedding net maps each component of ``s(r_ij)`` to one row of the
embedding matrix ``G_i`` — a function ``g : R -> R^M``.  The paper's
networks use ``d1 = 32`` with two width-doubling shortcut layers, so
``M = 4 d1 = 128`` (Fig. 1 (c) and (e)).

Because the input is a *scalar*, first and second derivatives of the whole
net can be propagated cheaply in forward mode; the tabulation of Sec. 3.2
needs ``g``, ``g'`` and ``g''`` at the interval nodes to fit its
fifth-order (Hermite-quintic) polynomials.
"""

from __future__ import annotations

import numpy as np

from .network import MLP, DenseLayer, ResidualDenseLayer

__all__ = ["EmbeddingNet"]


class EmbeddingNet(MLP):
    """Three-layer embedding net with width pattern ``d1 -> 2 d1 -> 4 d1``.

    Parameters
    ----------
    d1:
        Width of the first fully-connected layer (32 in the paper); the
        output width is ``M = 4 d1``.
    rng:
        Seeded generator for the synthetic weights.
    scale:
        Weight scale; kept below 1 so the synthetic potential-energy
        surface is smooth and MD with it stays well-behaved.
    """

    def __init__(self, d1: int = 32, rng: np.random.Generator | None = None,
                 scale: float = 0.8):
        if rng is None:
            rng = np.random.default_rng(0)
        if d1 < 1:
            raise ValueError("d1 must be positive")
        layers = [
            DenseLayer(1, d1, rng, scale),
            ResidualDenseLayer(d1, 2 * d1, rng, scale),
            ResidualDenseLayer(2 * d1, 4 * d1, rng, scale),
        ]
        super().__init__(layers)
        self.d1 = d1
        self.M = 4 * d1

    def evaluate(self, s: np.ndarray) -> np.ndarray:
        """Map a flat array of ``s`` values to rows of ``G`` — shape ``(n, M)``."""
        s = np.asarray(s, dtype=np.float64).reshape(-1, 1)
        return self(s)

    def evaluate_with_derivatives(self, s: np.ndarray):
        """Forward-mode evaluation returning ``(g, g', g'')``.

        Each output has shape ``(n, M)``.  Derivatives are with respect to
        the scalar input, propagated exactly (no finite differences):
        for ``t = tanh(z)`` with ``z = x W + b``,

        * ``y'  = (1 - t^2) (x' W)  [+ shortcut']``
        * ``y'' = (1 - t^2) (x'' W) - 2 t (1 - t^2) (x' W)^2 [+ shortcut'']``
        """
        s = np.asarray(s, dtype=np.float64).reshape(-1, 1)
        x = s
        x1 = np.ones_like(s)
        x2 = np.zeros_like(s)
        for layer in self.layers:
            z1 = x1 @ layer.W
            z2 = x2 @ layer.W
            t = np.tanh(x @ layer.W + layer.b)
            dt = 1.0 - t * t
            y = t
            y1 = dt * z1
            y2 = dt * z2 - 2.0 * t * dt * z1 * z1
            if isinstance(layer, ResidualDenseLayer):
                if layer.doubling:
                    y = np.concatenate([x, x], axis=1) + y
                    y1 = np.concatenate([x1, x1], axis=1) + y1
                    y2 = np.concatenate([x2, x2], axis=1) + y2
                else:
                    y, y1, y2 = x + y, x1 + y1, x2 + y2
            x, x1, x2 = y, y1, y2
        return x, x1, x2

    def flops_per_input(self) -> int:
        """FLOPs to push one scalar through the net, matching Sec. 2.2.

        The paper counts the three-layer net as
        ``d1 + 10 d1^2`` FLOPs per element of ``s``
        (``2*(1*d1) ~ d1`` for the first layer and the two doubling GEMMs
        at ``2*d1*2d1 + 2*2d1*4d1 = 20 d1^2``, halved to multiply-adds).
        """
        return self.d1 + 10 * self.d1 * self.d1
