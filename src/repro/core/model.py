"""The baseline Deep Potential model (Sec. 2) — full forward and backward.

This is the reproduction of the *uncompressed* DeePMD-kit inference path
(the paper's baseline [20]): per-neighbor-type embedding nets evaluated on
padded neighbor lists, the full embedding matrix ``G`` materialized, GEMM
descriptor construction, per-center-type fitting nets, and reverse-mode
force/virial production through the customized operators.

Shapes use the paper's symbols: ``n`` local atoms, ``N_m = sum(sel)``
padded neighbor capacity, ``M = 4 d1`` embedding width, ``M<`` the
sub-matrix width, descriptor width ``M< * M``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .descriptor import descriptor_backward, descriptor_forward
from .embedding import EmbeddingNet
from .fitting import FittingNet
from .network import init_rng
from .ops import prod_env_mat_a, prod_force_se_a, prod_virial_se_a

__all__ = ["ModelSpec", "EvalResult", "DPModel"]


@dataclass(frozen=True)
class ModelSpec:
    """Hyper-parameters of a Deep Potential model.

    ``sel`` is the per-neighbor-type capacity (DeePMD's ``sel``); the
    padded neighbor width is ``N_m = sum(sel)``.  The paper's systems use
    ``N_m = 138`` (water, two types) and 500→512 (copper, one type),
    embedding ``32x64x128`` (``d1 = 32``), ``M< = 16``, fitting
    ``240x240x240``.
    """

    rcut: float
    rcut_smth: float
    sel: tuple
    n_types: int = 1
    d1: int = 32
    m_sub: int = 16
    fit_width: int = 240
    fit_hidden: int = 3
    seed: int = 2022

    def __post_init__(self):
        if len(self.sel) != self.n_types:
            raise ValueError("sel must have one capacity per atom type")
        if self.rcut_smth >= self.rcut:
            raise ValueError("rcut_smth must be below rcut")
        if self.m_sub > 4 * self.d1:
            raise ValueError("M< cannot exceed M = 4*d1")

    @property
    def n_m(self) -> int:
        """Padded neighbor capacity ``N_m``."""
        return int(sum(self.sel))

    @property
    def m_out(self) -> int:
        """Embedding output width ``M = 4 d1``."""
        return 4 * self.d1

    @property
    def descriptor_width(self) -> int:
        return self.m_sub * self.m_out


@dataclass
class EvalResult:
    """Output of one model evaluation."""

    energy: float
    atomic_energies: np.ndarray
    forces: np.ndarray
    virial: np.ndarray
    extras: dict = field(default_factory=dict)


class DPModel:
    """Baseline (uncompressed) Deep Potential model.

    Parameters are synthetic but deterministic (seeded); see DESIGN.md for
    why this preserves every studied property of the paper.
    """

    def __init__(self, spec: ModelSpec):
        self.spec = spec
        rng = init_rng(spec.seed)
        self.embeddings = [
            EmbeddingNet(spec.d1, rng) for _ in range(spec.n_types)
        ]
        self.fittings = [
            FittingNet(spec.descriptor_width, spec.fit_width,
                       spec.fit_hidden, rng)
            for _ in range(spec.n_types)
        ]
        #: Per-type energy bias (trained models carry one; ours is zero
        #: by default and settable for calibration).
        self.energy_bias = np.zeros(spec.n_types)

    # ------------------------------------------------------------------ util
    @property
    def n_parameters(self) -> int:
        return sum(n.n_params for n in self.embeddings) + sum(
            n.n_params for n in self.fittings
        )

    def neighbor_types(self, atom_types: np.ndarray, nlist: np.ndarray) -> np.ndarray:
        """Per-slot neighbor types; padded slots get type 0 (inert)."""
        safe = np.where(nlist >= 0, nlist, 0)
        ntypes = np.asarray(atom_types)[safe]
        return np.where(nlist >= 0, ntypes, 0)

    # -------------------------------------------------------------- pipeline
    def _embed_forward(self, s_flat: np.ndarray, pair_types: np.ndarray):
        """Evaluate per-type embedding nets over all (padded) pairs.

        Returns ``G`` rows ``(n_pairs, M)`` plus the per-type caches the
        backward pass replays.
        """
        g = np.empty((s_flat.size, self.spec.m_out))
        caches = []
        for t, net in enumerate(self.embeddings):
            mask = pair_types == t
            idx = np.nonzero(mask)[0]
            if idx.size == 0:
                caches.append((idx, None))
                continue
            out, cache = net.forward(s_flat[idx].reshape(-1, 1))
            g[idx] = out
            caches.append((idx, cache))
        return g, caches

    def _embed_backward(self, d_g: np.ndarray, caches) -> np.ndarray:
        """Reverse through the embedding nets: ``dE/dG -> dE/ds`` per pair."""
        ds = np.zeros(d_g.shape[0])
        for net, (idx, cache) in zip(self.embeddings, caches):
            if cache is None:
                continue
            net.zero_grad()
            ds[idx] = net.backward(d_g[idx], cache)[:, 0]
        return ds

    def _fit(self, descr: np.ndarray, center_types: np.ndarray):
        """Per-center-type fitting nets: energies + descriptor gradient."""
        n = descr.shape[0]
        energies = np.empty(n)
        d_descr = np.empty_like(descr)
        for t, net in enumerate(self.fittings):
            idx = np.nonzero(center_types == t)[0]
            if idx.size == 0:
                continue
            e, caches = net.energies_with_cache(descr[idx])
            energies[idx] = e + self.energy_bias[t]
            net.zero_grad()
            d_descr[idx] = net.input_gradient(caches, idx.size)
        return energies, d_descr

    # -------------------------------------------------------------- evaluate
    def evaluate(
        self,
        coords: np.ndarray,
        atom_types: np.ndarray,
        centers: np.ndarray,
        nlist: np.ndarray,
        counters=None,
        timer=None,
    ) -> EvalResult:
        """Energy, forces and virial from padded neighbor lists.

        Parameters
        ----------
        coords:
            ``(n_total, 3)`` positions including ghost images.
        atom_types:
            ``(n_total,)`` type index per coordinate row.
        centers:
            ``(n,)`` indices of the atoms whose energy is evaluated.
        nlist:
            ``(n, N_m)`` padded neighbor lists (``-1`` pads).
        counters:
            Optional :class:`repro.core.fused.KernelCounters` to record the
            baseline's FLOPs and its ``G`` footprint.
        timer:
            Optional :class:`repro.perf.profiler.SectionTimer` to attribute
            wall time to pipeline sections (Sec. 2.2's profile).
        """
        from contextlib import nullcontext

        sec = timer.section if timer is not None else (
            lambda _name: nullcontext())
        spec = self.spec
        atom_types = np.asarray(atom_types)
        n = len(centers)
        n_total = coords.shape[0]
        width = nlist.shape[1]  # padded capacity (>= observed neighbors)

        with sec("env_mat"):
            descrpt, deriv, rij = prod_env_mat_a(
                coords, centers, nlist, spec.rcut_smth, spec.rcut
            )
        s_flat = descrpt[..., 0].reshape(-1)
        pair_types = self.neighbor_types(atom_types, nlist).reshape(-1)

        with sec("embedding_net"):
            g_flat, emb_caches = self._embed_forward(s_flat, pair_types)
        g = g_flat.reshape(n, width, spec.m_out)
        if counters is not None:
            # The baseline's defining cost: G is materialized (several
            # copies exist in practice; we count this one's footprint).
            counters.observe_buffer(g.nbytes)
            counters.flops += (spec.d1 + 10 * spec.d1 * spec.d1) * s_flat.size
            counters.processed_pairs += s_flat.size

        with sec("descriptor"):
            descr, t_cache = descriptor_forward(descrpt, g, spec.m_sub,
                                                spec.n_m)
        if counters is not None:
            counters.flops += 2 * 4 * spec.m_out * s_flat.size
            counters.flops += 2 * 4 * spec.m_sub * spec.m_out * n

        center_types = atom_types[np.asarray(centers)]
        with sec("fitting_net"):
            energies, d_descr = self._fit(descr, center_types)
        if counters is not None:
            counters.flops += 2 * self.fittings[0].flops_per_atom() * n

        with sec("descriptor"):
            d_r, d_g = descriptor_backward(
                d_descr, t_cache, descrpt, g, spec.m_sub, spec.n_m
            )
        with sec("embedding_net"):
            ds = self._embed_backward(d_g.reshape(-1, spec.m_out),
                                      emb_caches)
        net_deriv = d_r
        net_deriv[..., 0] += ds.reshape(n, width)

        with sec("force_virial"):
            forces = prod_force_se_a(net_deriv, deriv, centers, nlist,
                                     n_total)
            virial = prod_virial_se_a(net_deriv, deriv, rij)
        return EvalResult(
            energy=float(energies.sum()),
            atomic_energies=energies,
            forces=forces,
            virial=virial,
        )

    # ------------------------------------------------------------- analytics
    def embedding_flops_per_atom(self) -> int:
        """Paper Sec. 2.2: ``N_m d1 + 10 N_m d1^2`` FLOPs per atom."""
        d1, n_m = self.spec.d1, self.spec.n_m
        return n_m * d1 + 10 * n_m * d1 * d1

    def g_bytes_per_atom(self, itemsize: int = 8) -> int:
        """Footprint of one copy of ``G_i`` per atom: ``N_m * M * 8`` bytes."""
        return self.spec.n_m * self.spec.m_out * itemsize
