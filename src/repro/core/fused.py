"""Fused tabulation+GEMM kernels and redundancy removal (Secs. 3.4/3.5).

The descriptor needs ``T_i = R̃_iᵀ G_i`` — a ``4 x M`` matrix per atom.
The baseline materializes the embedding matrix ``G`` (``n x N_m x M``,
>95 % of all memory) and calls GEMM.  The paper's fused kernel instead
accumulates per-neighbor outer products ``R̃_row ⊗ g(s)`` directly into
``T`` while the tabulated ``g(s)`` row still lives in registers; padded
neighbor slots are skipped outright (redundancy removal).

The NumPy realization processes neighbors in bounded chunks so the
largest live buffer is ``chunk x M`` instead of ``n N_m x M`` — the same
peak-memory collapse, observable through :class:`KernelCounters`.  The
chunk length is a first-class cache tunable: passing ``chunk=None``
(the default) sizes it to the host's L2 cache via
:func:`repro.perf.machine.default_kernel_chunk`, the NumPy analogue of
the paper's LDM/thread-block tiling (Secs. 3.4.1, 3.5.1).

Three stages of the paper's ladder are exposed:

* :func:`tabulated_g_full` + a GEMM — tabulation only (stage "+tab"),
* :func:`fused_contract_padded` — fusion, still padded ("+fusion"),
* :func:`fused_contract_packed` — fusion over real neighbors only
  ("+redundancy"), operating on CSR (ragged) neighbor data.

The packed backward pass (:func:`fused_backward_packed`) re-evaluates the
table instead of storing it — the paper's "trading time with space" — so
compressed-model forces never allocate ``G`` either.

Per-atom reductions go through :func:`segment_reduce`, which reduces
every CSR segment independently (``np.add.reduceat`` over the non-empty
segment starts).  Because no state crosses a segment boundary, the
kernel output is **bitwise invariant** under the chunk length and under
the threaded engine's shard cuts (shards split at atom boundaries) —
the equivalence-matrix property the chunk tunable relies on.  The
``accum_dtype`` knob selects the accumulator precision: ``None`` keeps
the value dtype (the float32 fast path sums in float32), while
``np.float64`` reproduces the mixed scheme that reduces in double.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "KernelCounters",
    "segment_sum",
    "segment_reduce",
    "resolve_chunk",
    "tabulated_g_full",
    "fused_contract_padded",
    "fused_contract_packed",
    "fused_backward_packed",
]

#: Fixed legacy chunk length.  Kernels called with ``chunk=None`` ignore
#: this and size the chunk to the host cache (:func:`resolve_chunk`);
#: the constant remains for callers that want a deterministic,
#: machine-independent blocking.
DEFAULT_CHUNK = 4096


def resolve_chunk(chunk: int | None, m_out: int, itemsize: int = 8) -> int:
    """Concrete chunk length: the given one, or the cache-aware default.

    ``chunk=None`` defers to :func:`repro.perf.machine.
    default_kernel_chunk`, which sizes one chunk's working set to the
    host's L2 cache for a table of width ``m_out`` and element size
    ``itemsize``.
    """
    if chunk is not None:
        chunk = int(chunk)
        if chunk < 1:
            raise ValueError(f"chunk must be positive, got {chunk}")
        return chunk
    # Imported lazily: repro.core must not pull repro.perf at import time
    # (repro.perf.compiled imports repro.core for the backend registry).
    from ..perf.machine import default_kernel_chunk
    return default_kernel_chunk(m_out, itemsize=itemsize)


@dataclass
class KernelCounters:
    """FLOP / traffic / footprint accounting for one kernel invocation."""

    flops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    peak_buffer_bytes: int = 0
    skipped_pairs: int = 0
    processed_pairs: int = 0

    def observe_buffer(self, nbytes: int) -> None:
        self.peak_buffer_bytes = max(self.peak_buffer_bytes, int(nbytes))

    def merge(self, other: "KernelCounters") -> None:
        self.flops += other.flops
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.peak_buffer_bytes = max(self.peak_buffer_bytes, other.peak_buffer_bytes)
        self.skipped_pairs += other.skipped_pairs
        self.processed_pairs += other.processed_pairs


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Sum ``values`` rows into segments delimited by ``indptr``.

    Prefix-sum formulation: cumulative sums differenced at the segment
    boundaries, always accumulating in float64 (the mixed-precision
    scheme keeps reductions in double) while the result honors the input
    dtype.  Because each segment's value depends on the *prefix* of the
    whole array, results are only reproducible for a fixed array split —
    use :func:`segment_reduce` where bitwise chunk/shard invariance
    matters (the fused kernels do).
    """
    n_seg = len(indptr) - 1
    if values.shape[0] == 0:
        return np.zeros((n_seg,) + values.shape[1:], dtype=values.dtype)
    csum = np.cumsum(values, axis=0, dtype=np.float64)
    zero = np.zeros((1,) + values.shape[1:], dtype=np.float64)
    csum = np.concatenate([zero, csum], axis=0)
    out = csum[indptr[1:]] - csum[indptr[:-1]]
    return out.astype(values.dtype, copy=False)


def segment_reduce(values: np.ndarray, indptr: np.ndarray,
                   accum_dtype=None) -> np.ndarray:
    """Per-segment-independent row sum over CSR segments.

    ``np.add.reduceat`` over the starts of the *non-empty* segments:
    each segment is reduced left-to-right from its own rows only, so the
    per-segment result is bitwise independent of how the surrounding
    array is chunked or sharded — and empty segments (which plain
    ``reduceat`` mishandles) come out exactly zero.

    ``accum_dtype`` selects the accumulator: ``None`` reduces in the
    value dtype (the float32 fast path), ``np.float64`` upcasts before
    reducing and rounds once at the end (the mixed scheme).  The result
    dtype always matches ``values``.
    """
    n_seg = len(indptr) - 1
    shape = (n_seg,) + values.shape[1:]
    if values.shape[0] == 0:
        return np.zeros(shape, dtype=values.dtype)
    acc = values
    if accum_dtype is not None:
        acc = values.astype(accum_dtype, copy=False)
    starts = np.asarray(indptr[:-1], dtype=np.intp)
    nonempty = np.diff(indptr) > 0
    out = np.zeros(shape, dtype=acc.dtype)
    if nonempty.any():
        # reduceat reduces from each listed start to the next listed
        # start; consecutive empty segments collapse onto the same
        # offset, so listing only non-empty starts keeps every reduction
        # inside its own segment.
        out[nonempty] = np.add.reduceat(acc, starts[nonempty], axis=0)
    return out.astype(values.dtype, copy=False)


def tabulated_g_full(table, s_flat: np.ndarray,
                     counters: KernelCounters | None = None) -> np.ndarray:
    """Unfused tabulated embedding: materializes all of ``G`` (stage "+tab")."""
    g = table.evaluate(s_flat)
    if counters is not None:
        counters.flops += table.flops_per_input() * s_flat.size
        counters.bytes_read += s_flat.nbytes
        counters.bytes_written += g.nbytes
        counters.observe_buffer(g.nbytes)
        counters.processed_pairs += s_flat.size
    return g


def fused_contract_padded(
    table,
    descrpt: np.ndarray,
    n_m_norm: int,
    counters: KernelCounters | None = None,
    chunk: int | None = None,
) -> np.ndarray:
    """Fused ``T = R̃ᵀ g(s) / N_m`` over *padded* neighbor arrays.

    ``descrpt`` is ``(n, N_m, 4)``; its first column is the embedding
    input ``s``.  Padded slots are still evaluated (their ``R̃`` rows are
    zero so they contribute nothing) — this is the "+fusion" stage before
    redundancy removal.

    Counter model (asserted shape-for-shape by the tests): each chunk
    reads its ``R̃`` block and ``s`` slice and writes its ``T`` slab once
    (the einsum), and the final ``1/N_m`` scale re-reads and re-writes
    all of ``T`` — so ``bytes_written`` totals exactly twice the output
    size.
    """
    n, n_m, _ = descrpt.shape
    m_out = table.m_out
    chunk = resolve_chunk(chunk, m_out, descrpt.dtype.itemsize)
    t_out = np.zeros((n, 4, m_out), dtype=descrpt.dtype)
    inv = 1.0 / float(n_m_norm)
    atoms_per_block = max(1, chunk // n_m)
    for a_lo in range(0, n, atoms_per_block):
        a_hi = min(a_lo + atoms_per_block, n)
        r_block = descrpt[a_lo:a_hi]  # (na, Nm, 4)
        s_block = r_block[..., 0].reshape(-1)
        g_chunk = table.evaluate(s_block)
        block = g_chunk.reshape(a_hi - a_lo, n_m, m_out)
        np.einsum("nja,njm->nam", r_block, block, out=t_out[a_lo:a_hi],
                  casting="same_kind")
        if counters is not None:
            counters.flops += table.flops_per_input() * g_chunk.shape[0]
            counters.flops += 2 * 4 * m_out * g_chunk.shape[0]
            counters.bytes_read += r_block.nbytes + s_block.nbytes
            counters.bytes_written += t_out[a_lo:a_hi].nbytes
            counters.observe_buffer(g_chunk.nbytes)
            counters.processed_pairs += g_chunk.shape[0]
    t_out *= inv
    if counters is not None:
        counters.bytes_read += t_out.nbytes
        counters.bytes_written += t_out.nbytes
    return t_out


def fused_contract_packed(
    table,
    s: np.ndarray,
    rows: np.ndarray,
    indptr: np.ndarray,
    n_m_norm: int,
    counters: KernelCounters | None = None,
    chunk: int | None = None,
    out: np.ndarray | None = None,
    accum_dtype=None,
) -> np.ndarray:
    """Fused contraction over packed (CSR) neighbors — the full optimization.

    Parameters
    ----------
    s, rows:
        Per-real-pair embedding inputs ``(nnz,)`` and environment-matrix
        rows ``(nnz, 4)``.
    indptr:
        CSR atom boundaries, length ``n + 1``.
    n_m_norm:
        Fixed normalization (the model's ``N_m``) so padded and packed
        paths agree bitwise.
    chunk:
        Neighbor-chunk length; ``None`` sizes it to the host cache
        (:func:`resolve_chunk`).  The output is bitwise invariant under
        ``chunk`` — segments reduce independently.
    out:
        Optional ``(n, 4, M)`` destination (a disjoint slab when the
        threaded engine shards atoms); every atom row is overwritten.
    accum_dtype:
        Accumulator dtype for the per-atom reduction (see
        :func:`segment_reduce`); ``None`` keeps the value dtype.
    """
    n = len(indptr) - 1
    m_out = table.m_out
    nnz = int(s.shape[0])
    chunk = resolve_chunk(chunk, m_out, rows.dtype.itemsize)
    t_out = out if out is not None else np.zeros((n, 4, m_out),
                                                 dtype=rows.dtype)
    inv = 1.0 / float(n_m_norm)
    a_lo = 0
    while a_lo < n:
        # Grow the atom block until it holds ~chunk pairs (always at least
        # one atom, even if that atom alone exceeds the chunk).
        a_hi = a_lo + 1
        while a_hi < n and indptr[a_hi + 1] - indptr[a_lo] <= chunk:
            a_hi += 1
        start, stop = int(indptr[a_lo]), int(indptr[a_hi])
        g_chunk = table.evaluate(s[start:stop])
        contrib = rows[start:stop, :, None] * g_chunk[:, None, :]
        t_out[a_lo:a_hi] = segment_reduce(
            contrib, indptr[a_lo:a_hi + 1] - start, accum_dtype=accum_dtype)
        if counters is not None:
            npair = stop - start
            counters.flops += table.flops_per_input() * npair
            counters.flops += 2 * 4 * m_out * npair
            counters.bytes_read += rows[start:stop].nbytes + s[start:stop].nbytes
            counters.bytes_written += t_out[a_lo:a_hi].nbytes
            counters.observe_buffer(g_chunk.nbytes + contrib.nbytes)
            counters.processed_pairs += npair
        a_lo = a_hi
    t_out *= inv
    if counters is not None:
        counters.bytes_read += t_out.nbytes
        counters.bytes_written += t_out.nbytes
        counters.skipped_pairs += n * n_m_norm - nnz
    return t_out


def fused_backward_packed(
    table,
    dt: np.ndarray,
    s: np.ndarray,
    rows: np.ndarray,
    indptr: np.ndarray,
    n_m_norm: int,
    counters: KernelCounters | None = None,
    chunk: int | None = None,
    pair_atom: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Backward of the packed fused contraction.

    Given ``dE/dT`` (``(n, 4, M)``) produce ``dE/dR̃`` rows augmented with
    the embedding-input term — shape ``(nnz, 4)`` where column 0 already
    includes ``dE/ds`` (since ``s`` is both the first env-matrix column
    and the embedding input, Fig. 1).  The table (value and derivative)
    is re-evaluated chunk-wise rather than cached, and the two largest
    intermediates — the gathered ``dT`` rows and the ``dg`` product —
    live in scratch buffers sized to one chunk that are reused across
    chunks, so the pass allocates ``O(chunk · M)`` regardless of ``nnz``.

    FLOP model per pair (asserted by the tests): the dual-Horner table
    re-evaluation (``2 × flops_per_input``) plus the three contractions —
    ``dR̃`` (``8 M``), ``dg`` (``8 M``) and the ``dg · g'`` dot (``2 M``)
    — totalling ``2 · flops_per_input + 18 M``.

    Parameters
    ----------
    pair_atom:
        Optional pair→atom map (row index into ``dt`` per pair).  It is
        derivable from ``indptr`` but costs an ``np.repeat`` per call, so
        callers that evaluate many times between neighbor rebuilds (the
        MD loop rebuilds every ~50 steps) should compute it once per
        build — :attr:`repro.md.neighbor.NeighborData.pair_atom` caches
        exactly this — and pass it in.
    out:
        Optional ``(nnz, 4)`` destination (a disjoint slab when the
        threaded engine shards pairs); every row is overwritten.
    """
    nnz = s.shape[0]
    m_out = table.m_out
    chunk = resolve_chunk(chunk, m_out, rows.dtype.itemsize)
    inv = 1.0 / float(n_m_norm)
    d_rows = out if out is not None else np.empty((nnz, 4), dtype=rows.dtype)
    if pair_atom is None:
        pair_atom = np.repeat(np.arange(len(indptr) - 1), np.diff(indptr))
    buf_len = min(chunk, nnz)
    dt_buf = np.empty((buf_len, 4, m_out), dtype=dt.dtype)
    dg_buf = np.empty((buf_len, m_out),
                      dtype=np.result_type(dt.dtype, rows.dtype))
    start = 0
    while start < nnz:
        stop = min(start + chunk, nnz)
        npair = stop - start
        g_val, g_der = table.evaluate_with_deriv(s[start:stop])
        dt_rows = np.take(dt, pair_atom[start:stop], axis=0,
                          out=dt_buf[:npair])
        # dR̃_p[a] = sum_m dT[a, m] g_p[m] / Nm
        np.einsum("pam,pm->pa", dt_rows, g_val, out=d_rows[start:stop],
                  casting="same_kind")
        d_rows[start:stop] *= inv
        # ds_p = sum_{a,m} dT[a, m] R̃_p[a] g'_p[m] / Nm
        dg = np.einsum("pam,pa->pm", dt_rows, rows[start:stop],
                       out=dg_buf[:npair], casting="same_kind")
        d_rows[start:stop, 0] += np.einsum("pm,pm->p", dg, g_der) * inv
        if counters is not None:
            counters.flops += (2 * table.flops_per_input()
                               + 18 * m_out) * npair
            counters.bytes_read += (dt_rows.nbytes + s[start:stop].nbytes
                                    + rows[start:stop].nbytes)
            counters.bytes_written += d_rows[start:stop].nbytes
            counters.observe_buffer(g_val.nbytes * 2 + dg.nbytes
                                    + dt_rows.nbytes)
            counters.processed_pairs += npair
        start = stop
    return d_rows
