"""The fitting net mapping descriptors to atomic energies (Fig. 1 (d)).

A standard fully-connected network whose hidden layers share one width
(240 in the paper) with identity shortcut connections between the input
and output of every hidden layer except the first (whose input is the
``M< * M``-wide descriptor and therefore cannot be short-circuited), and
a final affine head producing the scalar ``E_i``.
"""

from __future__ import annotations

import numpy as np

from .network import MLP, DenseLayer, LinearLayer, ResidualDenseLayer

__all__ = ["FittingNet"]


class FittingNet(MLP):
    """Three-hidden-layer fitting network ``N : R^{M< M} -> R``.

    Parameters
    ----------
    n_in:
        Descriptor width ``M< * M`` (2048 for the paper's ``M<=16, M=128``).
    width:
        Hidden width (240 in the paper).
    n_hidden:
        Number of hidden layers (3 in the paper).
    out_scale:
        Scale of the output head; small values keep the synthetic PES
        gentle enough for stable MD.
    """

    def __init__(self, n_in: int, width: int = 240, n_hidden: int = 3,
                 rng: np.random.Generator | None = None,
                 scale: float = 0.8, out_scale: float = 0.05):
        if rng is None:
            rng = np.random.default_rng(1)
        if n_hidden < 1:
            raise ValueError("fitting net needs at least one hidden layer")
        layers = [DenseLayer(n_in, width, rng, scale)]
        for _ in range(n_hidden - 1):
            layers.append(ResidualDenseLayer(width, width, rng, scale))
        layers.append(LinearLayer(width, 1, rng, out_scale))
        super().__init__(layers)
        self.width = width
        self.n_hidden = n_hidden
        # Descriptor standardization (DeePMD's davg/dstd): identity until
        # calibrated from data (set_input_stats / EnergyTrainer).
        self.input_shift = np.zeros(n_in)
        self.input_scale = np.ones(n_in)

    def set_input_stats(self, mean: np.ndarray, std: np.ndarray,
                        eps: float = 1e-8) -> None:
        """Standardize descriptors as ``(D - mean) / max(std, eps)``.

        Trained DeePMD models carry such statistics; without them the
        descriptor's tiny relative variance makes the fitting net learn
        only the mean energy.
        """
        self.input_shift = np.asarray(mean, dtype=np.float64).copy()
        self.input_scale = 1.0 / np.maximum(np.asarray(std, np.float64), eps)

    def _normalize(self, descr: np.ndarray) -> np.ndarray:
        return (descr - self.input_shift) * self.input_scale

    def energies(self, descr: np.ndarray) -> np.ndarray:
        """Atomic energies ``E_i`` — shape ``(n,)``."""
        return self(self._normalize(descr))[:, 0]

    def energies_with_cache(self, descr: np.ndarray):
        y, caches = self.forward(self._normalize(descr))
        return y[:, 0], caches

    def input_gradient(self, caches, n: int) -> np.ndarray:
        """``d(sum_i E_i)/d descriptor`` via reverse mode — shape ``(n, n_in)``."""
        dy = np.ones((n, 1))
        return self.backward(dy, caches) * self.input_scale

    def input_gradient_pure(self, caches, n: int) -> np.ndarray:
        """Like :meth:`input_gradient` but without touching ``dW``/``db``.

        Bit-identical ``dx`` arithmetic; safe for concurrent workers
        sharing one net (the threaded engine's sharded fitting pass).
        """
        dy = np.ones((n, 1))
        return self.backward_dx(dy, caches) * self.input_scale

    def backward_input(self, dy: np.ndarray, caches) -> np.ndarray:
        """Reverse mode with an arbitrary output seed, returning the
        gradient w.r.t. the *raw* (unnormalized) descriptor."""
        return self.backward(dy, caches) * self.input_scale

    def flops_per_atom(self) -> int:
        """Multiply-add FLOP count (x2) through the fitting net for one atom."""
        total = 0
        for layer in self.layers:
            total += 2 * layer.W.size
        return total
