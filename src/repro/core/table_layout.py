"""Data-layout transforms for the coefficient tables (Secs. 3.5.1, 3.5.3).

On A64FX the paper transposes the tabulated coefficients in groups of 16
structures so 512-bit SVE loads stream them (Sec. 3.5.1), and implements a
fast AoS<->SoA converter for the 12-wide ``descrpt_a_deriv`` tensor
(Fig. 5).  The NumPy analogue of "SVE-friendly" is coefficient-major
storage: gathering one coefficient plane for a batch of table rows is a
contiguous fancy-index instead of a strided one.  Both the block-of-16
transpose (faithful to the paper's memory image) and the plain
coefficient-major layout (what actually speeds up NumPy) live here, and
the micro-benchmarks measure the difference.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "aos_to_soa_blocked",
    "soa_blocked_to_aos",
    "deriv_aos_to_soa",
    "deriv_soa_to_aos",
    "SoAEmbeddingTable",
]


def aos_to_soa_blocked(aos: np.ndarray, block: int = 16) -> np.ndarray:
    """Transpose an ``(n, k)`` AoS array into blocks of ``block`` structures.

    The result has shape ``(n_blocks, k, block)`` — within each block the
    ``k`` fields are stored contiguously across the ``block`` structures,
    exactly the image produced by the paper's 16-structure transpose.
    ``n`` is padded with zeros up to a multiple of ``block``.
    """
    aos = np.asarray(aos)
    n, k = aos.shape
    n_blocks = -(-n // block)
    padded = np.zeros((n_blocks * block, k), dtype=aos.dtype)
    padded[:n] = aos
    return np.ascontiguousarray(
        padded.reshape(n_blocks, block, k).transpose(0, 2, 1)
    )


def soa_blocked_to_aos(soa: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`aos_to_soa_blocked`, trimming padding back to ``n``."""
    n_blocks, k, block = soa.shape
    aos = soa.transpose(0, 2, 1).reshape(n_blocks * block, k)
    return np.ascontiguousarray(aos[:n])


def deriv_aos_to_soa(deriv: np.ndarray) -> np.ndarray:
    """SoA view of the ``descrpt_a_deriv`` tensor for vectorized ops.

    Input is the operator-native AoS ``(n_pairs, 4, 3)`` (12 doubles per
    pair, Sec. 3.5.3); output is component-major ``(12, n_pairs)`` so each
    of the 12 derivative components streams contiguously.
    """
    n = deriv.shape[0]
    return np.ascontiguousarray(deriv.reshape(n, 12).T)


def deriv_soa_to_aos(soa: np.ndarray) -> np.ndarray:
    """Inverse of :func:`deriv_aos_to_soa` — back to ``(n_pairs, 4, 3)``."""
    n = soa.shape[1]
    return np.ascontiguousarray(soa.T).reshape(n, 4, 3)


class SoAEmbeddingTable:
    """Coefficient-major evaluator over an :class:`EmbeddingTable`'s data.

    Stores the quintic coefficients as ``(6, n_intervals, M)`` so that the
    per-coefficient gathers in the Horner loop touch contiguous memory —
    the NumPy counterpart of the paper's SVE-transposed table.  Produces
    bitwise-identical values to the AoS evaluator.
    """

    def __init__(self, table):
        self.x_min = table.x_min
        self.interval = table.interval
        self.n_intervals = table.n_intervals
        self.m_out = table.m_out
        # (n_intervals, M, 6) -> (6, n_intervals, M), contiguous per plane.
        self.coeffs = np.ascontiguousarray(table.coeffs.transpose(2, 0, 1))

    def _locate(self, x: np.ndarray):
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        t = x - self.x_min
        idx = np.floor(t / self.interval).astype(np.intp)
        np.clip(idx, 0, self.n_intervals - 1, out=idx)
        return idx, t - idx * self.interval

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        idx, t = self._locate(x)
        tcol = t[:, None]
        out = self.coeffs[5][idx]
        for k in (4, 3, 2, 1, 0):
            out *= tcol
            out += self.coeffs[k][idx]
        return out

    def evaluate_with_deriv(self, x: np.ndarray):
        idx, t = self._locate(x)
        tcol = t[:, None]
        val = self.coeffs[5][idx]
        der = np.zeros_like(val)
        for k in (4, 3, 2, 1, 0):
            der *= tcol
            der += val
            val = val * tcol + self.coeffs[k][idx]
        return val, der
