"""Data-layout transforms for the coefficient tables (Secs. 3.5.1, 3.5.3).

On A64FX the paper transposes the tabulated coefficients in groups of 16
structures so 512-bit SVE loads stream them (Sec. 3.5.1), and implements a
fast AoS<->SoA converter for the 12-wide ``descrpt_a_deriv`` tensor
(Fig. 5).  The NumPy analogue of "SVE-friendly" is coefficient-major
storage: gathering one coefficient plane for a batch of table rows is a
contiguous fancy-index instead of a strided one.  Both the block-of-16
transpose (faithful to the paper's memory image) and the plain
coefficient-major layout (what actually speeds up NumPy) live here, and
the micro-benchmarks measure the difference.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "aos_to_soa_blocked",
    "soa_blocked_to_aos",
    "deriv_aos_to_soa",
    "deriv_soa_to_aos",
    "SoAEmbeddingTable",
]


def aos_to_soa_blocked(aos: np.ndarray, block: int = 16) -> np.ndarray:
    """Transpose an ``(n, k)`` AoS array into blocks of ``block`` structures.

    The result has shape ``(n_blocks, k, block)`` — within each block the
    ``k`` fields are stored contiguously across the ``block`` structures,
    exactly the image produced by the paper's 16-structure transpose.
    ``n`` is padded with zeros up to a multiple of ``block``.
    """
    aos = np.asarray(aos)
    n, k = aos.shape
    n_blocks = -(-n // block)
    padded = np.zeros((n_blocks * block, k), dtype=aos.dtype)
    padded[:n] = aos
    return np.ascontiguousarray(
        padded.reshape(n_blocks, block, k).transpose(0, 2, 1)
    )


def soa_blocked_to_aos(soa: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`aos_to_soa_blocked`, trimming padding back to ``n``."""
    n_blocks, k, block = soa.shape
    aos = soa.transpose(0, 2, 1).reshape(n_blocks * block, k)
    return np.ascontiguousarray(aos[:n])


def deriv_aos_to_soa(deriv: np.ndarray) -> np.ndarray:
    """SoA view of the ``descrpt_a_deriv`` tensor for vectorized ops.

    Input is the operator-native AoS ``(n_pairs, 4, 3)`` (12 doubles per
    pair, Sec. 3.5.3); output is component-major ``(12, n_pairs)`` so each
    of the 12 derivative components streams contiguously.
    """
    n = deriv.shape[0]
    return np.ascontiguousarray(deriv.reshape(n, 12).T)


def deriv_soa_to_aos(soa: np.ndarray) -> np.ndarray:
    """Inverse of :func:`deriv_aos_to_soa` — back to ``(n_pairs, 4, 3)``."""
    n = soa.shape[1]
    return np.ascontiguousarray(soa.T).reshape(n, 4, 3)


class SoAEmbeddingTable:
    """Coefficient-major evaluator over an :class:`EmbeddingTable`'s data.

    Stores the quintic coefficients as ``(6, n_intervals, M)`` so that the
    per-coefficient gathers in the Horner loop touch contiguous memory —
    the NumPy counterpart of the paper's SVE-transposed table.  Produces
    bitwise-identical values to the AoS evaluator for float64 tables; for
    float32 tables the whole Horner runs in float32 (the in-place ops
    never upcast), which is what makes it the fast path's table.

    Implements the same kernel-facing surface as
    :class:`~repro.core.tabulation.EmbeddingTable` (``m_out``,
    ``evaluate``, ``evaluate_with_deriv``, ``flops_per_input``,
    ``size_bytes``), so the fused kernels take either interchangeably.
    """

    def __init__(self, table):
        self.x_min = table.x_min
        self.interval = table.interval
        self.n_intervals = table.n_intervals
        self.m_out = table.m_out
        coeffs = table.coeffs
        if coeffs.ndim == 3 and coeffs.shape[2] == 6:
            # (n_intervals, M, 6) -> (6, n_intervals, M), one contiguous
            # plane per coefficient.
            coeffs = coeffs.transpose(2, 0, 1)
        elif not (coeffs.ndim == 3 and coeffs.shape[0] == 6):
            raise ValueError(
                f"expected coefficients shaped (n, M, 6) or (6, n, M), "
                f"got {coeffs.shape}")
        self.coeffs = np.ascontiguousarray(coeffs)

    # ------------------------------------------------------------- locate
    def _locate(self, x: np.ndarray):
        # Interval location always runs in float64: the index arithmetic
        # must agree between the f32 and f64 pipelines.
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        t = x - self.x_min
        idx = np.floor(t / self.interval).astype(np.intp)
        np.clip(idx, 0, self.n_intervals - 1, out=idx)
        return idx, t - idx * self.interval

    def _tcol(self, t: np.ndarray) -> np.ndarray:
        # Cast the local coordinate to the coefficient dtype so the
        # in-place Horner never mixes precisions: a no-op for float64
        # tables, a single rounding for float32 ones.
        return t.astype(self.coeffs.dtype, copy=False)[:, None]

    # ----------------------------------------------------------- evaluate
    def evaluate(self, x: np.ndarray) -> np.ndarray:
        idx, t = self._locate(x)
        tcol = self._tcol(t)
        out = self.coeffs[5][idx]
        for k in (4, 3, 2, 1, 0):
            out *= tcol
            out += self.coeffs[k][idx]
        return out

    def evaluate_with_deriv(self, x: np.ndarray):
        idx, t = self._locate(x)
        tcol = self._tcol(t)
        val = self.coeffs[5][idx]
        der = np.zeros_like(val)
        for k in (4, 3, 2, 1, 0):
            # In-place simultaneous Horner; the der update reads the
            # pre-update val, matching the AoS evaluator's order.
            der *= tcol
            der += val
            val *= tcol
            val += self.coeffs[k][idx]
        return val, der

    # --------------------------------------------------------- accounting
    @property
    def dtype(self):
        return self.coeffs.dtype

    @property
    def size_bytes(self) -> int:
        """Coefficient storage — identical to the AoS table's."""
        return self.coeffs.nbytes

    def flops_per_input(self) -> int:
        """Same quintic Horner as the AoS table: ``14 M`` per element."""
        return 14 * self.m_out

    # ------------------------------------------------------------ layout
    def astype(self, dtype) -> "SoAEmbeddingTable":
        """A copy of this table with coefficients cast to ``dtype``."""
        clone = object.__new__(SoAEmbeddingTable)
        clone.x_min = self.x_min
        clone.interval = self.interval
        clone.n_intervals = self.n_intervals
        clone.m_out = self.m_out
        clone.coeffs = np.ascontiguousarray(self.coeffs.astype(dtype))
        return clone

    def blocked_image(self, block: int = 16) -> np.ndarray:
        """The paper's 16-structure transposed memory image (Sec. 3.5.1).

        Flattens each interval's ``(M, 6)`` coefficient record and blocks
        intervals by ``block`` via :func:`aos_to_soa_blocked` — shape
        ``(ceil(n/block), 6 M, block)``.  Round-trips exactly through
        :func:`soa_blocked_to_aos`; provided for layout studies, the
        evaluator itself uses the coefficient-major planes.
        """
        aos = np.ascontiguousarray(
            self.coeffs.transpose(1, 2, 0)).reshape(self.n_intervals, -1)
        return aos_to_soa_blocked(aos, block=block)
