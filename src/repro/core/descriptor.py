"""The symmetry-preserving descriptor ``D = (G<)^T R̃ R̃^T G`` (Eq. 2).

With ``T = R̃^T G / N_m`` (a tiny ``4 x M`` matrix per atom) the
descriptor is ``D = (T<)^T T`` where ``T<`` keeps the first ``M<``
columns.  ``T`` is exactly the quantity the paper's fused kernel
accumulates as a sum of per-neighbor outer products (Fig. 4 (c)) — the
embedding matrix ``G`` never has to exist for the optimized path; this
module provides the mathematical core shared by both paths plus the
reverse-mode pass the force computation needs.

Rotational invariance: a rotation ``Q`` maps ``R̃ -> R̃ diag(1, Q)`` so
``T -> diag(1, Q)ᵀ T`` appears on *both* sides of ``(T<)^T T`` and cancels;
permutations of the neighbor list reorder the rows summed over; and
translations never enter (only displacements do).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "contract_t",
    "descriptor_from_t",
    "descriptor_forward",
    "descriptor_backward",
    "dt_from_ddescr",
    "descriptor_dim",
]


def descriptor_dim(m_out: int, m_sub: int) -> int:
    """Flattened descriptor length ``M< * M`` (fitting-net input width)."""
    return m_sub * m_out


def contract_t(descrpt: np.ndarray, g: np.ndarray, n_m_norm: int) -> np.ndarray:
    """``T = R̃^T G / N_m`` for a batch — shape ``(n, 4, M)``.

    ``n_m_norm`` is the *model* neighbor capacity, used as a fixed
    normalization so that padded and packed evaluations agree bitwise.
    """
    return np.einsum("nja,njm->nam", descrpt, g) / float(n_m_norm)


def descriptor_from_t(t: np.ndarray, m_sub: int) -> np.ndarray:
    """``D = (T<)^T T`` flattened to ``(n, M< * M)``."""
    d = np.einsum("nas,nam->nsm", t[:, :, :m_sub], t)
    n, _, m_out = t.shape
    return d.reshape(n, m_sub * m_out)


def descriptor_forward(descrpt: np.ndarray, g: np.ndarray, m_sub: int,
                       n_m_norm: int):
    """Full forward pass; returns ``(D, T)`` with ``T`` cached for backward."""
    t = contract_t(descrpt, g, n_m_norm)
    return descriptor_from_t(t, m_sub), t


def dt_from_ddescr(d_descr: np.ndarray, t: np.ndarray, m_sub: int) -> np.ndarray:
    """``dE/dD -> dE/dT`` — the part of the backward pass shared with the
    fused (compressed) path, which never owns ``G``.

    With ``D_sm = sum_a T_{a s} T_{a m}`` (``s < M<``):

    * ``dT_{a m} += sum_s dD_{s m} T_{a s}``   (all columns)
    * ``dT_{a s} += sum_m dD_{s m} T_{a m}``   (first ``M<`` columns)
    """
    n, _, m_out = t.shape
    dd = d_descr.reshape(n, m_sub, m_out)
    dt = np.einsum("nsm,nas->nam", dd, t[:, :, :m_sub])
    dt[:, :, :m_sub] += np.einsum("nsm,nam->nas", dd, t)
    return dt


def descriptor_backward(
    d_descr: np.ndarray,
    t: np.ndarray,
    descrpt: np.ndarray,
    g: np.ndarray,
    m_sub: int,
    n_m_norm: int,
):
    """Reverse-mode through the descriptor.

    Parameters
    ----------
    d_descr:
        ``dE/dD`` flattened, shape ``(n, M< * M)``.
    t, descrpt, g:
        Forward-pass values (``T`` from :func:`descriptor_forward`).

    Returns
    -------
    d_r:
        ``dE/dR̃`` — shape ``(n, N_m, 4)``.
    d_g:
        ``dE/dG`` — shape ``(n, N_m, M)``.
    """
    dt = dt_from_ddescr(d_descr, t, m_sub)
    inv = 1.0 / float(n_m_norm)
    d_r = np.einsum("nam,njm->nja", dt, g) * inv
    d_g = np.einsum("nam,nja->njm", dt, descrpt) * inv
    return d_r, d_g
