"""NumPy implementations of DeePMD-kit's customized operators.

DeePMD-kit implements the stages around the neural nets as hand-written
TensorFlow operators; the paper optimizes three of them (Secs. 3.4.3 and
3.5.3).  This module reproduces their exact dataflow:

* :func:`prod_env_mat_a` — builds the environment matrix ``R̃_i`` (Eq. 1),
  its derivative tensor ``descrpt_a_deriv`` (the ``N_m x 4 x 3`` AoS the
  paper vectorizes on A64FX), and the displacement vectors ``r_ij``.
* :func:`prod_force_se_a` — contracts ``dE/dR̃`` with the derivative
  tensor and scatters pair forces onto atoms.
* :func:`prod_virial_se_a` — same contraction accumulated into the 3x3
  virial tensor.

Neighbor lists arrive padded to ``N_m`` with ``-1`` (the baseline layout
whose redundant zeros Sec. 3.4.2 removes).  Padded slots produce exact
zeros in ``R̃`` and its derivative, so downstream GEMMs spend FLOPs on
them without changing results — precisely the redundancy the optimized
kernels skip.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "smooth_switch",
    "smooth_switch_deriv",
    "prod_env_mat_a",
    "prod_env_mat_a_packed",
    "prod_force_se_a",
    "prod_force_se_a_packed",
    "prod_virial_se_a",
    "prod_virial_se_a_packed",
]


def smooth_switch(r: np.ndarray, rcut_smth: float, rcut: float) -> np.ndarray:
    """The gated radial weight ``s(r) = w(r)/r`` of Eq. 1.

    ``w`` decays C2-smoothly from 1 to 0 on ``[rcut_smth, rcut]`` using the
    quintic smoothstep DeePMD-kit's ``se_a`` descriptor employs:
    ``w(u) = u^3 (-6 u^2 + 15 u - 10) + 1`` with
    ``u = (r - rcut_smth) / (rcut - rcut_smth)``.
    """
    r = np.asarray(r, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.where(r > 0, 1.0 / np.maximum(r, 1e-300), 0.0)
    u = (r - rcut_smth) / (rcut - rcut_smth)
    uu = np.clip(u, 0.0, 1.0)
    w = uu**3 * (-6.0 * uu**2 + 15.0 * uu - 10.0) + 1.0
    s = inv * np.where(r < rcut, w, 0.0)
    return np.where(r > 0, s, 0.0)


def smooth_switch_deriv(r: np.ndarray, rcut_smth: float, rcut: float) -> np.ndarray:
    """``ds/dr`` for :func:`smooth_switch` (analytic, used by the deriv tensor)."""
    r = np.asarray(r, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.where(r > 0, 1.0 / np.maximum(r, 1e-300), 0.0)
    span = rcut - rcut_smth
    u = (r - rcut_smth) / span
    uu = np.clip(u, 0.0, 1.0)
    w = uu**3 * (-6.0 * uu**2 + 15.0 * uu - 10.0) + 1.0
    dw = (uu**2 * (-30.0 * uu**2 + 60.0 * uu - 30.0)) / span
    inside = (r > 0) & (r < rcut)
    mid = (r >= rcut_smth) & (r < rcut)
    # s = w/r  =>  s' = w'/r - w/r^2
    ds = np.where(mid, dw, 0.0) * inv - np.where(r < rcut, w, 0.0) * inv * inv
    return np.where(inside, ds, 0.0)


def prod_env_mat_a(
    coords: np.ndarray,
    centers: np.ndarray,
    nlist: np.ndarray,
    rcut_smth: float,
    rcut: float,
):
    """Build the environment matrix and its position derivative.

    Parameters
    ----------
    coords:
        ``(n_total, 3)`` positions; rows may include ghost atoms.  Neighbor
        displacements are taken directly (callers supply unwrapped ghost
        images, as LAMMPS does), so no minimum-image logic happens here.
    centers:
        ``(n_local,)`` indices of the central atoms in ``coords``.
    nlist:
        ``(n_local, N_m)`` neighbor indices into ``coords``; ``-1`` pads.
    rcut_smth, rcut:
        Inner/outer radii of the smooth switch.

    Returns
    -------
    descrpt:
        ``(n_local, N_m, 4)`` — rows ``s * (1, x/d, y/d, z/d)``; padded
        rows are exactly zero.
    descrpt_deriv:
        ``(n_local, N_m, 4, 3)`` — ``d descrpt[:, j, c] / d r_j`` (the
        derivative with respect to the *neighbor* position; the central
        atom's derivative is its negative).
    rij:
        ``(n_local, N_m, 3)`` displacement vectors ``r_j - r_i`` (zero on
        padded slots).
    """
    coords = np.asarray(coords, dtype=np.float64)
    nlist = np.asarray(nlist)
    n_local, n_m = nlist.shape
    mask = nlist >= 0
    safe = np.where(mask, nlist, 0)

    rij = coords[safe] - coords[centers][:, None, :]
    rij[~mask] = 0.0
    d = np.linalg.norm(rij, axis=2)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_d = np.where(d > 0, 1.0 / np.maximum(d, 1e-300), 0.0)

    s = smooth_switch(d, rcut_smth, rcut)
    ds = smooth_switch_deriv(d, rcut_smth, rcut)
    s[~mask] = 0.0
    ds[~mask] = 0.0

    unit = rij * inv_d[..., None]  # \hat r_ij, zero on pads
    descrpt = np.empty((n_local, n_m, 4))
    descrpt[..., 0] = s
    descrpt[..., 1:] = s[..., None] * unit

    # d/dr_j of each column. With e = rij/d (depends on r_j):
    #   d s / dr_j        = ds * e
    #   d (s e_a) / dr_jb = ds * e_a e_b + s * (delta_ab - e_a e_b) / d
    deriv = np.zeros((n_local, n_m, 4, 3))
    deriv[..., 0, :] = ds[..., None] * unit
    ee = unit[..., :, None] * unit[..., None, :]  # (n, Nm, 3, 3)
    eye = np.eye(3)
    proj = (eye - ee) * np.where(d > 0, inv_d, 0.0)[..., None, None]
    deriv[..., 1:, :] = ds[..., None, None] * ee + s[..., None, None] * proj
    deriv[~mask] = 0.0
    return descrpt, deriv, rij


def prod_env_mat_a_packed(
    coords: np.ndarray,
    centers: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    rcut_smth: float,
    rcut: float,
    pair_center: np.ndarray | None = None,
):
    """Packed (CSR) environment matrix — the redundancy-free layout.

    Parameters
    ----------
    indices, indptr:
        CSR neighbor structure: neighbors of local atom ``i`` are
        ``indices[indptr[i]:indptr[i+1]]`` (indices into ``coords``).
    pair_center:
        Optional per-pair central-atom row (``centers`` expanded over the
        CSR counts).  Supplying it skips the ``np.repeat`` and lets the
        threaded engine call this on arbitrary pair slices.

    Returns
    -------
    rows:
        ``(nnz, 4)`` environment-matrix rows (column 0 is ``s``).
    deriv:
        ``(nnz, 4, 3)`` derivative w.r.t. the neighbor position.
    rij:
        ``(nnz, 3)`` displacement vectors.
    """
    coords = np.asarray(coords)
    if coords.dtype not in (np.float32, np.float64):
        coords = coords.astype(np.float64)
    dtype = coords.dtype
    indices = np.asarray(indices)
    if pair_center is None:
        counts = np.diff(indptr)
        pair_center = np.repeat(np.asarray(centers), counts)

    rij = coords[indices] - coords[pair_center]
    d = np.linalg.norm(rij, axis=1).astype(dtype)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_d = np.where(d > 0, 1.0 / np.maximum(d, 1e-300), 0.0).astype(dtype)

    s = smooth_switch(d, rcut_smth, rcut).astype(dtype)
    ds = smooth_switch_deriv(d, rcut_smth, rcut).astype(dtype)
    unit = rij * inv_d[:, None]

    rows = np.empty((len(indices), 4), dtype=dtype)
    rows[:, 0] = s
    rows[:, 1:] = s[:, None] * unit

    deriv = np.zeros((len(indices), 4, 3), dtype=dtype)
    deriv[:, 0, :] = ds[:, None] * unit
    ee = unit[:, :, None] * unit[:, None, :]
    proj = (np.eye(3, dtype=dtype) - ee) * inv_d[:, None, None]
    deriv[:, 1:, :] = ds[:, None, None] * ee + s[:, None, None] * proj
    return rows, deriv, rij


def prod_force_se_a(
    net_deriv: np.ndarray,
    descrpt_deriv: np.ndarray,
    centers: np.ndarray,
    nlist: np.ndarray,
    n_total: int,
) -> np.ndarray:
    """Scatter ``dE/dR̃`` into per-atom forces.

    ``F = -dE/dr``; with ``descrpt_deriv = dR̃/dr_j`` the neighbor ``j``
    receives ``-g·deriv`` and the central atom the opposite sign.  Forces
    land on *all* rows of the coordinate array (including ghosts);
    callers fold ghost forces back onto owners.
    """
    # pair_grad[i, j, :] = sum_c net_deriv[i, j, c] * descrpt_deriv[i, j, c, :]
    pair_grad = np.einsum("ijc,ijcx->ijx", net_deriv, descrpt_deriv)
    force = np.zeros((n_total, 3))
    mask = nlist >= 0
    flat_idx = nlist[mask]
    flat_grad = pair_grad[mask]
    for ax in range(3):
        force[:, ax] -= np.bincount(flat_idx, weights=flat_grad[:, ax], minlength=n_total)
    central = pair_grad.sum(axis=1)
    for ax in range(3):
        force[:, ax] += np.bincount(centers, weights=central[:, ax], minlength=n_total)
    return force


def prod_virial_se_a(
    net_deriv: np.ndarray,
    descrpt_deriv: np.ndarray,
    rij: np.ndarray,
) -> np.ndarray:
    """Accumulate the 3x3 virial tensor ``W = -sum_ij (dE/dr_j) ⊗ r_ij``."""
    pair_grad = np.einsum("ijc,ijcx->ijx", net_deriv, descrpt_deriv)
    return -np.einsum("ijx,ijy->xy", pair_grad, rij)


def prod_force_se_a_packed(
    net_deriv: np.ndarray,
    descrpt_deriv: np.ndarray,
    centers: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    n_total: int,
    pair_center: np.ndarray | None = None,
) -> np.ndarray:
    """Packed-layout force production (no padded slots to mask).

    ``net_deriv`` is ``(nnz, 4)`` and ``descrpt_deriv`` ``(nnz, 4, 3)``.
    ``pair_center`` (optional) is the per-pair central-atom row; passing
    it skips the ``np.repeat`` and enables evaluation on pair slices.
    """
    pair_grad = np.einsum("pc,pcx->px", net_deriv, descrpt_deriv)
    if pair_center is None:
        counts = np.diff(indptr)
        pair_center = np.repeat(np.asarray(centers), counts)
    force = np.zeros((n_total, 3))
    for ax in range(3):
        force[:, ax] -= np.bincount(indices, weights=pair_grad[:, ax],
                                    minlength=n_total)
        force[:, ax] += np.bincount(pair_center, weights=pair_grad[:, ax],
                                    minlength=n_total)
    return force


def prod_virial_se_a_packed(
    net_deriv: np.ndarray,
    descrpt_deriv: np.ndarray,
    rij: np.ndarray,
) -> np.ndarray:
    """Packed-layout virial: ``W = -sum_p (dE/dr_j)_p ⊗ r_p``."""
    pair_grad = np.einsum("pc,pcx->px", net_deriv, descrpt_deriv)
    return -np.einsum("px,py->xy", pair_grad, rij)
