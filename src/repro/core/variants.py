"""The optimization-stage ladder of Figs. 7 and 8.

The paper reports step-by-step speedups: baseline → +tabulation →
+kernel-fusion → +redundancy-removal → +other-optimizations.  This module
materializes each rung as an executable pipeline over the *same* inputs so
the relative cost of each stage can be measured directly (wall time,
FLOPs, peak buffer) and compared against the paper's ratios.

All stages compute the same physics; stages past ``BASELINE`` agree with
it up to the tabulation error.
"""

from __future__ import annotations

import enum

import numpy as np

from .activation import TanhTable
from .compressed import CompressedDPModel, pack_nlist
from .descriptor import (
    descriptor_backward,
    descriptor_forward,
    descriptor_from_t,
    dt_from_ddescr,
)
from .fused import (
    KernelCounters,
    fused_backward_packed,
    fused_contract_padded,
    tabulated_g_full,
)
from .model import DPModel, EvalResult
from .ops import (
    prod_env_mat_a,
    prod_env_mat_a_packed,
    prod_force_se_a,
    prod_virial_se_a,
)
from .tabulation import DEFAULT_INTERVAL, EmbeddingTable

__all__ = ["Stage", "StageLadder"]


class Stage(enum.Enum):
    """Rungs of the paper's optimization ladder."""

    BASELINE = "baseline"
    TABULATION = "+tabulation"
    FUSION = "+kernel fusion"
    REDUNDANCY = "+redundancy removal"
    OTHER_OPT = "+other optimizations"

    @classmethod
    def ordered(cls):
        return [cls.BASELINE, cls.TABULATION, cls.FUSION,
                cls.REDUNDANCY, cls.OTHER_OPT]


class StageLadder:
    """Executable pipelines for every optimization stage.

    Parameters
    ----------
    model:
        The baseline :class:`DPModel`; tables are built from its nets.
    interval:
        Tabulation interval (paper default 0.01).
    x_max:
        Upper bound of the table domain (must cover the workload's ``s``).
    """

    def __init__(self, model: DPModel, interval: float = DEFAULT_INTERVAL,
                 x_max: float = 2.0, chunk: int | None = None):
        from .fused import DEFAULT_CHUNK

        self.model = model
        self.spec = model.spec
        self.chunk = chunk if chunk is not None else DEFAULT_CHUNK
        self.tables = [
            EmbeddingTable.from_net(net, 0.0, x_max, interval)
            for net in model.embeddings
        ]
        self._compressed = CompressedDPModel(
            self.spec, self.tables, model.fittings, model.energy_bias,
            chunk=self.chunk,
        )
        self._compressed_opt = CompressedDPModel(
            self.spec, self.tables, model.fittings, model.energy_bias,
            chunk=self.chunk, use_soa=True,
        )
        self._tanh_table = TanhTable()

    # ------------------------------------------------------------- evaluate
    def evaluate(self, stage: Stage, coords, atom_types, centers, nlist,
                 counters: KernelCounters | None = None) -> EvalResult:
        """Run the full energy/force pipeline at the given stage."""
        if stage is Stage.BASELINE:
            return self.model.evaluate(coords, atom_types, centers, nlist,
                                       counters=counters)
        if stage in (Stage.TABULATION, Stage.FUSION):
            return self._evaluate_padded_tab(
                stage, coords, atom_types, centers, nlist, counters
            )
        if stage is Stage.REDUNDANCY:
            return self._compressed.evaluate(
                coords, atom_types, centers, nlist, counters
            )
        if stage is Stage.OTHER_OPT:
            # SoA tables + tabulated tanh in the fitting nets.
            for net in self.model.fittings:
                net.set_activation(self._tanh_table)
            try:
                return self._compressed_opt.evaluate(
                    coords, atom_types, centers, nlist, counters
                )
            finally:
                for net in self.model.fittings:
                    net.set_activation(np.tanh)
        raise ValueError(f"unknown stage {stage}")

    def _evaluate_padded_tab(self, stage, coords, atom_types, centers,
                             nlist, counters):
        """Tabulated pipelines over padded lists (stages +tab / +fusion)."""
        spec = self.spec
        atom_types = np.asarray(atom_types)
        n = len(centers)
        n_total = coords.shape[0]
        width = np.asarray(nlist).shape[1]
        descrpt, deriv, rij = prod_env_mat_a(
            coords, centers, nlist, spec.rcut_smth, spec.rcut
        )
        s_flat = descrpt[..., 0].reshape(-1)
        pair_types = self.model.neighbor_types(atom_types, nlist).reshape(-1)

        if stage is Stage.TABULATION:
            # Unfused: G is materialized from the tables, then GEMM.
            g_flat = np.empty((s_flat.size, spec.m_out))
            for t, table in enumerate(self.tables):
                mask = pair_types == t
                if spec.n_types == 1:
                    mask = np.ones_like(mask)
                idx = np.nonzero(mask)[0]
                if idx.size:
                    g_flat[idx] = tabulated_g_full(table, s_flat[idx], counters)
                if spec.n_types == 1:
                    break
            g = g_flat.reshape(n, width, spec.m_out)
            descr, t_mat = descriptor_forward(descrpt, g, spec.m_sub, spec.n_m)
        else:
            # Fused over padded slots: no G, but pads still computed.
            if spec.n_types != 1:
                raise NotImplementedError(
                    "padded fusion stage is single-type (copper-style); "
                    "multi-type systems jump straight to the packed path"
                )
            t_mat = fused_contract_padded(
                self.tables[0], descrpt, spec.n_m, counters,
                chunk=self.chunk,
            )
            descr = descriptor_from_t(t_mat, spec.m_sub)
            g = None

        center_types = atom_types[np.asarray(centers)]
        energies, d_descr = self._compressed._fit(descr, center_types)

        if stage is Stage.TABULATION:
            d_r, d_g = descriptor_backward(
                d_descr, t_mat, descrpt, g, spec.m_sub, spec.n_m
            )
            ds = np.zeros(s_flat.size)
            d_g_flat = d_g.reshape(-1, spec.m_out)
            for t, table in enumerate(self.tables):
                idx = (np.arange(s_flat.size) if spec.n_types == 1
                       else np.nonzero(pair_types == t)[0])
                if idx.size == 0:
                    continue
                _, g_der = table.evaluate_with_deriv(s_flat[idx])
                # descriptor_backward already applies the 1/N_m factor.
                ds[idx] = np.einsum("pm,pm->p", d_g_flat[idx], g_der)
                if spec.n_types == 1:
                    break
            net_deriv = d_r
            net_deriv[..., 0] += ds.reshape(n, width)
        else:
            dt = dt_from_ddescr(d_descr, t_mat, spec.m_sub)
            rows = descrpt.reshape(-1, 4)
            flat_ptr = np.arange(n + 1, dtype=np.intp) * width
            nd_rows = fused_backward_packed(
                self.tables[0], dt, s_flat, rows, flat_ptr, spec.n_m,
                counters, chunk=self.chunk,
            )
            net_deriv = nd_rows.reshape(n, width, 4)
            # Padded slots must carry no gradient (their deriv tensor is
            # zero anyway, but keep the array exact).
            net_deriv[np.asarray(nlist) < 0] = 0.0

        forces = prod_force_se_a(net_deriv, deriv, centers, nlist, n_total)
        virial = prod_virial_se_a(net_deriv, deriv, rij)
        return EvalResult(
            energy=float(energies.sum()),
            atomic_energies=energies,
            forces=forces,
            virial=virial,
        )

    # ------------------------------------------------------- descriptor-only
    def descriptor_kernel(self, stage: Stage, coords, atom_types, centers,
                          nlist):
        """Return a zero-argument callable running only the embedding →
        descriptor contraction at the given stage — the kernel Figs. 7/8
        attribute >90 % of the baseline's time to.  Used by the
        micro-benchmarks.
        """
        spec = self.spec
        descrpt, _, _ = prod_env_mat_a(
            coords, centers, nlist, spec.rcut_smth, spec.rcut
        )
        s_flat = descrpt[..., 0].reshape(-1)
        pair_types = self.model.neighbor_types(
            np.asarray(atom_types), nlist
        ).reshape(-1)
        n = len(centers)

        if stage is Stage.BASELINE:
            def run():
                g, _ = self.model._embed_forward(s_flat, pair_types)
                g = g.reshape(n, spec.n_m, spec.m_out)
                d, _ = descriptor_forward(descrpt, g, spec.m_sub, spec.n_m)
                return d
            return run
        if stage is Stage.TABULATION:
            table = self.tables[0]

            def run():
                g = table.evaluate(s_flat).reshape(n, spec.n_m, spec.m_out)
                d, _ = descriptor_forward(descrpt, g, spec.m_sub, spec.n_m)
                return d
            return run
        if stage is Stage.FUSION:
            table = self.tables[0]

            def run():
                t = fused_contract_padded(table, descrpt, spec.n_m)
                return descriptor_from_t(t, spec.m_sub)
            return run
        # Packed stages share the packed kernel; OTHER_OPT uses SoA tables.
        indices, indptr = pack_nlist(np.asarray(nlist))
        model = (self._compressed_opt if stage is Stage.OTHER_OPT
                 else self._compressed)
        rows, _, _ = prod_env_mat_a_packed(
            coords, centers, indices, indptr, spec.rcut_smth, spec.rcut
        )
        s = rows[:, 0]
        table = model.tables[0]

        def run():
            from .fused import fused_contract_packed

            t = fused_contract_packed(table, s, rows, indptr, spec.n_m)
            return descriptor_from_t(t, spec.m_sub)
        return run
