"""Activation functions and the tabulated tanh of Sec. 3.5.3.

The DP model uses ``tanh`` everywhere (chosen for accuracy, Sec. 3.5.3).
On A64FX the paper replaces libm's ``tanh`` with a second-order polynomial
table over ``[0, 8]`` exploiting oddness (``tanh(-x) = -tanh(x)``) and
clamping ``tanh(x > 8) = 1``; the reported error is about 1e-7 and the
speedup about 60x.  :class:`TanhTable` is that construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tanh", "dtanh", "d2tanh", "TanhTable"]


def tanh(x: np.ndarray) -> np.ndarray:
    """Reference activation (delegates to numpy)."""
    return np.tanh(x)


def dtanh(t: np.ndarray) -> np.ndarray:
    """Derivative of tanh expressed in terms of ``t = tanh(x)``."""
    return 1.0 - t * t


def d2tanh(t: np.ndarray) -> np.ndarray:
    """Second derivative of tanh in terms of ``t = tanh(x)``: -2 t (1 - t^2)."""
    return -2.0 * t * (1.0 - t * t)


class TanhTable:
    """Second-order piecewise-polynomial approximation of tanh.

    The positive half-axis ``[0, upper]`` is divided into ``n`` uniform
    intervals.  In each interval the quadratic interpolates tanh at the two
    endpoints and matches the derivative at the left endpoint, which keeps
    the absolute error below ~1e-7 for the default 8192 intervals over
    ``[0, 8]`` — the figure quoted in Sec. 3.5.3.  Inputs beyond ``upper``
    saturate to 1, and negative inputs use oddness.

    Parameters
    ----------
    upper:
        Tabulation range upper bound (the paper uses 8).
    n_intervals:
        Number of uniform intervals on ``[0, upper]``.
    """

    def __init__(self, upper: float = 8.0, n_intervals: int = 8192):
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        if n_intervals < 2:
            raise ValueError("need at least 2 intervals")
        self.upper = float(upper)
        self.n_intervals = int(n_intervals)
        self.h = self.upper / self.n_intervals

        nodes = np.linspace(0.0, self.upper, self.n_intervals + 1)
        t = np.tanh(nodes)
        dt = 1.0 - t * t
        t0, t1 = t[:-1], t[1:]
        d0 = dt[:-1]
        h = self.h
        # quadratic a + b*(x-x0) + c*(x-x0)^2 with f(x0)=t0, f'(x0)=d0,
        # f(x1)=t1  =>  c = (t1 - t0 - d0*h) / h^2
        self._a = t0
        self._b = d0
        self._c = (t1 - t0 - d0 * h) / (h * h)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        ax = np.abs(x)
        # Branch-free evaluation: clamp into the table, polynomial
        # everywhere, then overwrite the saturated tail — no boolean
        # gather/scatter (which dominates the cost for large batches).
        t = np.minimum(ax, self.upper * (1.0 - 1e-16))
        t *= 1.0 / self.h
        idx = t.astype(np.intp)
        dx = t
        dx -= idx
        dx *= self.h
        out = self._c[idx]
        out *= dx
        out += self._b[idx]
        out *= dx
        out += self._a[idx]
        np.copyto(out, 1.0, where=ax >= self.upper)
        return np.copysign(out, x)

    def max_error(self, n_samples: int = 200_001) -> float:
        """Worst-case absolute error over a dense grid spanning the table."""
        xs = np.linspace(-self.upper * 1.25, self.upper * 1.25, n_samples)
        return float(np.max(np.abs(self(xs) - np.tanh(xs))))

    @property
    def table_bytes(self) -> int:
        """Memory held by the coefficient table (three float64 rows)."""
        return self._a.nbytes + self._b.nbytes + self._c.nbytes
