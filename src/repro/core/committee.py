"""Model-deviation committee (DP-GEN-style active learning, lite).

The paper's copper model comes from DP-GEN [40], the concurrent-learning
platform that drives sampling by *model deviation*: an ensemble of DP
models trained on the same data but different seeds disagrees most where
the data is thin, and frames whose maximum force deviation falls in a
band are selected for labelling.

This module reproduces that machinery on top of the reproduction's
models: an ensemble evaluator, the per-atom force-deviation metric
(DP-GEN's ``max_devi_f``), and the frame-selection rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .backend import EvalRequest, backend_for
from .compressed import CompressedDPModel
from .model import DPModel, ModelSpec

__all__ = ["ModelCommittee", "DeviationRecord"]


@dataclass(frozen=True)
class DeviationRecord:
    """Model-deviation metrics for one configuration (DP-GEN names)."""

    max_devi_f: float       #: max over atoms of the force std magnitude
    min_devi_f: float
    avg_devi_f: float
    devi_e: float           #: std of the per-atom energy across models

    def selects(self, lo: float, hi: float) -> bool:
        """DP-GEN's trust band: candidate iff ``lo <= max_devi_f < hi``."""
        return lo <= self.max_devi_f < hi


class ModelCommittee:
    """An ensemble of DP models differing only in their seed.

    Parameters
    ----------
    spec:
        Architecture shared by all members (the seed field is ignored).
    n_models:
        Ensemble size (DP-GEN default: 4).
    compress:
        Evaluate through the compressed pipeline (tabulated + fused).
    """

    def __init__(self, spec: ModelSpec, n_models: int = 4,
                 compress: bool = True, interval: float = 0.01,
                 x_max: float = 2.5, base_seed: int = 0):
        if n_models < 2:
            raise ValueError("a committee needs at least two members")
        self.spec = spec
        self.members = []
        for k in range(n_models):
            member_spec = ModelSpec(
                rcut=spec.rcut, rcut_smth=spec.rcut_smth, sel=spec.sel,
                n_types=spec.n_types, d1=spec.d1, m_sub=spec.m_sub,
                fit_width=spec.fit_width, fit_hidden=spec.fit_hidden,
                seed=base_seed + 1000 * (k + 1),
            )
            model = DPModel(member_spec)
            if compress:
                model = CompressedDPModel.compress(
                    model, interval=interval, x_max=x_max)
            self.members.append(model)
        #: One resolved backend per member — the members are evaluated
        #: exclusively through the uniform ForceBackend contract, so an
        #: engine handed to :meth:`evaluate` reaches every member's
        #: fused kernels (committees used to run serial under
        #: ``--threads`` because ``engine=`` was never forwarded).
        self.backends = [backend_for(m) for m in self.members]

    def __len__(self) -> int:
        return len(self.members)

    def evaluate(self, nd, engine=None) -> list:
        """Every member's ``EvalResult`` on one configuration.

        ``engine`` (a :class:`~repro.parallel.engine.ThreadedEngine`)
        shards each engine-capable member's kernels over its workers.
        """
        return [
            b.evaluate(EvalRequest.from_neighbors(nd, engine=engine))
            for b in self.backends
        ]

    def deviation(self, nd, engine=None) -> DeviationRecord:
        """DP-GEN's model-deviation metrics for one configuration."""
        results = self.evaluate(nd, engine=engine)
        n_local = nd.n_local
        forces = np.stack([nd.fold_forces(r.forces) for r in results])
        energies = np.array([r.energy for r in results]) / n_local
        # per-atom force std: sqrt(mean over models of |F - <F>|^2)
        mean_f = forces.mean(axis=0)
        dev = np.sqrt(np.mean(np.sum((forces - mean_f) ** 2, axis=2),
                              axis=0))
        return DeviationRecord(
            max_devi_f=float(dev.max()),
            min_devi_f=float(dev.min()),
            avg_devi_f=float(dev.mean()),
            devi_e=float(energies.std()),
        )

    def select_frames(self, frames, lo: float, hi: float,
                      engine=None) -> list:
        """Indices of configurations inside the trust band (the frames
        DP-GEN would send to first-principles labelling)."""
        return [k for k, nd in enumerate(frames)
                if self.deviation(nd, engine=engine).selects(lo, hi)]
