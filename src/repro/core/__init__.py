"""The paper's primary contribution: the Deep Potential model, its
fifth-order tabulation, fused kernels, and the optimization-stage ladder.
"""

from .activation import TanhTable, tanh
from .backend import (
    EvalRequest,
    ForceBackend,
    PackedBackend,
    PaddedFallbackBackend,
    backend_for,
    register_backend,
    unregister_backend,
)
from .committee import DeviationRecord, ModelCommittee
from .compressed import CompressedDPModel, pack_nlist
from .descriptor import descriptor_dim
from .descriptor_r import SeRModel
from .embedding import EmbeddingNet
from .fitting import FittingNet
from .fused import KernelCounters, resolve_chunk, segment_reduce
from .model import DPModel, EvalResult, ModelSpec
from .precision import precision_study, to_single_precision
from .table_layout import SoAEmbeddingTable
from .training import EnergyTrainer
from .tabulation import DEFAULT_INTERVAL, EmbeddingTable
from .variants import Stage, StageLadder

__all__ = [
    "CompressedDPModel",
    "DeviationRecord",
    "DEFAULT_INTERVAL",
    "DPModel",
    "EmbeddingNet",
    "EmbeddingTable",
    "EnergyTrainer",
    "EvalRequest",
    "EvalResult",
    "FittingNet",
    "ForceBackend",
    "PackedBackend",
    "PaddedFallbackBackend",
    "backend_for",
    "register_backend",
    "unregister_backend",
    "resolve_chunk",
    "segment_reduce",
    "KernelCounters",
    "ModelCommittee",
    "ModelSpec",
    "SeRModel",
    "SoAEmbeddingTable",
    "Stage",
    "StageLadder",
    "TanhTable",
    "pack_nlist",
    "precision_study",
    "to_single_precision",
    "descriptor_dim",
    "tanh",
]
