"""The optimized (compressed) Deep Potential model — Secs. 3.2–3.5.

``CompressedDPModel`` is the drop-in replacement for :class:`DPModel`
after the paper's full optimization ladder:

* the per-type embedding nets are replaced by fifth-order tables,
* the tabulation and descriptor GEMM are fused — ``G`` never exists,
* padded neighbor slots are skipped (packed/CSR neighbor data),
* optionally the fitting-net activation runs off the tanh table and the
  coefficient tables use the SoA (coefficient-major) layout.

The model produces the same energies/forces/virials as the baseline up
to the tabulation error (double-precision floor at interval 1e-3, Fig. 2)
while its peak working set drops from ``O(n N_m M)`` to ``O(chunk · M)``.
"""

from __future__ import annotations

import numpy as np

from .activation import TanhTable
from .descriptor import descriptor_from_t, dt_from_ddescr
from .fused import (
    KernelCounters,
    fused_backward_packed,
    fused_contract_packed,
)
from .model import DPModel, EvalResult, ModelSpec
from .ops import (
    prod_env_mat_a_packed,
    prod_force_se_a_packed,
    prod_virial_se_a_packed,
)
from .table_layout import SoAEmbeddingTable
from .tabulation import DEFAULT_INTERVAL, EmbeddingTable

__all__ = ["CompressedDPModel", "pack_nlist"]


def pack_nlist(nlist: np.ndarray):
    """Convert a padded ``(n, N_m)`` neighbor list to CSR ``(indices, indptr)``.

    This is the redundancy-removal transform: padded ``-1`` slots vanish.
    """
    mask = nlist >= 0
    counts = mask.sum(axis=1)
    indptr = np.zeros(len(nlist) + 1, dtype=np.intp)
    np.cumsum(counts, out=indptr[1:])
    return nlist[mask].astype(np.intp), indptr


def _per_type_csr(pair_types: np.ndarray, indptr: np.ndarray, t: int,
                  pair_atom: np.ndarray | None = None):
    """Select pairs of type ``t`` keeping the per-atom CSR structure.

    ``pair_atom`` (the pair→atom map) is recomputed from ``indptr`` when
    absent; evaluation loops pass the per-build cached one.
    """
    n = len(indptr) - 1
    if pair_atom is None:
        pair_atom = np.repeat(np.arange(n), np.diff(indptr))
    sel = np.nonzero(pair_types == t)[0]
    counts_t = np.bincount(pair_atom[sel], minlength=n)
    indptr_t = np.zeros(n + 1, dtype=np.intp)
    np.cumsum(counts_t, out=indptr_t[1:])
    return sel, indptr_t


class CompressedDPModel:
    """Tabulated + fused + redundancy-free Deep Potential model."""

    #: The packed evaluation accepts ``engine=``/``pair_atom=`` keywords
    #: (checked by :class:`repro.md.simulation.DPForceField` before it
    #: forwards the threaded engine).
    supports_engine = True

    #: The packed evaluation accepts ``splits=`` — a batch of independent
    #: systems concatenated along the atom/pair axes, evaluated in one
    #: pass with per-member results bitwise identical to standalone
    #: evaluation (the serving layer's batched-GEMM contract).
    supports_splits = True

    def __init__(self, spec: ModelSpec, tables, fittings, energy_bias,
                 chunk: int | None = None, use_soa: bool = False,
                 type_weights=None, layout: str | None = None,
                 accumulate: str = "native"):
        self.spec = spec
        self.tables = list(tables)
        if layout is None:
            layout = "soa" if use_soa else "aos"
        if layout not in ("aos", "soa"):
            raise ValueError(f"layout must be 'aos' or 'soa', got {layout!r}")
        self.layout = layout
        self.use_soa = layout == "soa"
        if self.use_soa:
            self.tables = [
                t if isinstance(t, SoAEmbeddingTable) else SoAEmbeddingTable(t)
                for t in self.tables
            ]
        self.fittings = list(fittings)
        self.energy_bias = np.asarray(energy_bias, dtype=np.float64)
        #: Neighbor-chunk length for the fused kernels; ``None`` defers
        #: to the cache-aware default (:func:`repro.core.fused.
        #: resolve_chunk`) at evaluation time.
        self.chunk = int(chunk) if chunk is not None else None
        if accumulate not in ("native", "f64"):
            raise ValueError(
                f"accumulate must be 'native' or 'f64', got {accumulate!r}")
        #: ``"native"`` reduces in the pipeline dtype (the f32 fast
        #: path); ``"f64"`` accumulates the fused forward and the final
        #: energy sum in double (the mixed scheme).
        self.accumulate = accumulate
        self.accum_dtype = np.float64 if accumulate == "f64" else None
        # Optional per-neighbor-type cost weights for the threaded
        # engine's shard cuts (e.g. relative table widths).  Strictly
        # opt-in: ``None`` keeps the unweighted quantile cuts, so shard
        # boundaries (and hence any tie-breaking) are unchanged.
        if type_weights is not None:
            type_weights = np.asarray(type_weights, dtype=np.float64)
            if type_weights.shape != (spec.n_types,):
                raise ValueError(
                    f"type_weights needs one weight per type "
                    f"({spec.n_types}), got shape {type_weights.shape}"
                )
            if np.any(type_weights < 0):
                raise ValueError("type_weights must be non-negative")
        self.type_weights = type_weights

    # --------------------------------------------------------------- factory
    @classmethod
    def compress(
        cls,
        model: DPModel,
        x_min: float = 0.0,
        x_max: float | None = None,
        interval: float = DEFAULT_INTERVAL,
        use_soa: bool = False,
        tanh_table: TanhTable | None = None,
        chunk: int | None = None,
        type_weights=None,
        layout: str | None = None,
        accumulate: str = "native",
    ) -> "CompressedDPModel":
        """Compress a baseline model (the paper's post-processing step).

        ``[x_min, x_max]`` must cover the physical range of ``s``; the
        default upper bound is ``s`` at the smallest plausible separation
        (0.5 Å), which generously covers condensed-phase workloads.
        """
        spec = model.spec
        if x_max is None:
            x_max = 1.0 / 0.5  # s <= w/r <= 1/r_min with w <= 1
        tables = [
            EmbeddingTable.from_net(net, x_min, x_max, interval)
            for net in model.embeddings
        ]
        fittings = model.fittings
        if tanh_table is not None:
            for net in fittings:
                net.set_activation(tanh_table)
        return cls(spec, tables, fittings, model.energy_bias,
                   chunk=chunk, use_soa=use_soa, type_weights=type_weights,
                   layout=layout, accumulate=accumulate)

    # ---------------------------------------------------------------- sizing
    @property
    def table_bytes(self) -> int:
        """Total coefficient storage (the 'model size' of Sec. 3.2)."""
        total = 0
        for t in self.tables:
            total += t.coeffs.nbytes if hasattr(t, "coeffs") else 0
        return total

    # -------------------------------------------------------------- pipeline
    def _fit(self, descr: np.ndarray, center_types: np.ndarray):
        n = descr.shape[0]
        energies = np.empty(n, dtype=descr.dtype)
        d_descr = np.empty_like(descr)
        for t, net in enumerate(self.fittings):
            idx = np.nonzero(center_types == t)[0]
            if idx.size == 0:
                continue
            e, caches = net.energies_with_cache(descr[idx])
            energies[idx] = e + self.energy_bias[t]
            net.zero_grad()
            d_descr[idx] = net.input_gradient(caches, idx.size)
        return energies, d_descr

    def evaluate_packed(
        self,
        coords: np.ndarray,
        atom_types: np.ndarray,
        centers: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        counters: KernelCounters | None = None,
        engine=None,
        pair_atom: np.ndarray | None = None,
        chunk: int | None = None,
        splits=None,
    ) -> EvalResult:
        """Energy/forces/virial from packed (CSR) neighbor lists.

        Parameters
        ----------
        chunk:
            Per-call override of the fused kernels' neighbor-chunk
            length; defaults to the model's :attr:`chunk` (itself
            ``None`` for the cache-aware automatic).  Results are
            bitwise invariant under this knob.
        splits:
            Optional batch boundaries: a sequence of ``(atom_lo,
            atom_hi)`` ranges partitioning ``centers`` into independent
            member systems whose CSR arrays were concatenated (the
            serving layer's batch packing).  The pair-domain stages
            (env-matrix, fused forward/backward, force scatter) run as
            one fused pass over the whole batch — results there are
            bitwise invariant under concatenation because
            :func:`~repro.core.fused.segment_reduce` never sums across
            an atom segment — while the fitting-net forward/backward
            (whose BLAS GEMMs are *not* row-count invariant) runs once
            per member, so every member's energies and forces are
            bitwise identical to evaluating it alone.  Per-member
            ``{"energy", "virial"}`` dicts land in
            ``extras["splits"]``.  Mutually exclusive with ``engine``
            (batched requests are parallelized *across* batches by the
            serving layer, never by intra-batch sharding, whose force
            merge order would depend on batch composition).
        engine:
            Optional :class:`repro.parallel.engine.ThreadedEngine`.  When
            given (with more than one thread) every pipeline stage runs
            sharded over its worker pool: the env-matrix, fused
            forward/backward, force, and virial kernels over pair-balanced
            CSR ranges, and the descriptor GEMMs plus the fitting-net
            forward/backward over equal-atom ranges (the fitting pass uses
            the gradient path that never writes the nets' shared
            ``dW``/``db`` buffers).  Per-worker counters are merged back
            into ``counters``.
        pair_atom:
            Optional pair→atom map (``NeighborData.pair_atom`` caches it
            per build); recomputed from ``indptr`` when absent.
        """
        spec = self.spec
        atom_types = np.asarray(atom_types)
        centers = np.asarray(centers)
        n = len(centers)
        n_total = coords.shape[0]
        indices = np.asarray(indices, dtype=np.intp)
        indptr = np.asarray(indptr, dtype=np.intp)
        chunk = chunk if chunk is not None else self.chunk
        threaded = engine is not None and engine.n_threads > 1
        if splits is not None:
            if threaded:
                raise ValueError(
                    "splits= (batched evaluation) cannot be combined with "
                    "a multi-thread engine: intra-batch shard cuts would "
                    "make the force merge order depend on batch "
                    "composition; parallelize across batches instead")
            splits = [(int(lo), int(hi)) for lo, hi in splits]
            expect = 0
            for lo, hi in splits:
                if lo != expect or hi < lo:
                    raise ValueError(
                        f"splits must partition [0, {n}) contiguously; "
                        f"got range ({lo}, {hi}) after {expect}")
                expect = hi
            if expect != n:
                raise ValueError(
                    f"splits must cover all {n} center atoms, "
                    f"covered {expect}")
        if pair_atom is None:
            pair_atom = np.repeat(np.arange(n, dtype=np.intp),
                                  np.diff(indptr))
        else:
            pair_atom = np.asarray(pair_atom, dtype=np.intp)
        pair_center = centers[pair_atom]
        pair_types = atom_types[indices]
        pair_weights = None
        if threaded and self.type_weights is not None:
            pair_weights = self.type_weights[pair_types]

        if threaded:
            rows, deriv, rij = engine.env_mat_packed(
                coords, centers, indices, indptr, spec.rcut_smth, spec.rcut,
                pair_atom=pair_atom, pair_weights=pair_weights,
            )
        else:
            rows, deriv, rij = prod_env_mat_a_packed(
                coords, centers, indices, indptr, spec.rcut_smth, spec.rcut,
                pair_center=pair_center,
            )
        s = rows[:, 0]

        # Fused forward: per-type tables accumulate into the shared T.
        t_mat = np.zeros((n, 4, spec.m_out), dtype=rows.dtype)
        type_sel = []
        for t, table in enumerate(self.tables):
            if spec.n_types == 1:
                sel, indptr_t, pa_t = slice(None), indptr, pair_atom
            else:
                sel, indptr_t = _per_type_csr(pair_types, indptr, t,
                                              pair_atom=pair_atom)
                pa_t = pair_atom[sel]
            type_sel.append((sel, indptr_t, pa_t))
            if isinstance(sel, np.ndarray) and sel.size == 0:
                continue
            if threaded:
                t_mat += engine.contract_packed(
                    table, s[sel], rows[sel], indptr_t, spec.n_m,
                    counters=counters, chunk=chunk,
                    accum_dtype=self.accum_dtype,
                )
            else:
                t_mat += fused_contract_packed(
                    table, s[sel], rows[sel], indptr_t, spec.n_m,
                    counters=counters, chunk=chunk,
                    accum_dtype=self.accum_dtype,
                )

        center_types = atom_types[centers]
        if threaded:
            descr = engine.descriptor_packed(t_mat, spec.m_sub)
            energies, d_descr = engine.fit_packed(
                self.fittings, self.energy_bias, descr, center_types)
            dt = engine.dt_packed(d_descr, t_mat, spec.m_sub)
        elif splits is not None:
            descr = descriptor_from_t(t_mat, spec.m_sub)
            # Per-member fitting pass: the dense GEMMs see exactly the
            # rows a standalone evaluation would, so the batch changes
            # nothing downstream of this point for any member.
            energies = np.empty(n, dtype=descr.dtype)
            d_descr = np.empty_like(descr)
            for lo, hi in splits:
                e_s, dd_s = self._fit(descr[lo:hi], center_types[lo:hi])
                energies[lo:hi] = e_s
                d_descr[lo:hi] = dd_s
            dt = dt_from_ddescr(d_descr, t_mat, spec.m_sub)
        else:
            descr = descriptor_from_t(t_mat, spec.m_sub)
            energies, d_descr = self._fit(descr, center_types)
            dt = dt_from_ddescr(d_descr, t_mat, spec.m_sub)
        net_deriv = np.empty_like(rows)
        for table, (sel, indptr_t, pa_t) in zip(self.tables, type_sel):
            if isinstance(sel, np.ndarray) and sel.size == 0:
                continue
            if threaded:
                net_deriv[sel] = engine.backward_packed(
                    table, dt, s[sel], rows[sel], indptr_t, spec.n_m,
                    pa_t, counters=counters, chunk=chunk,
                )
            else:
                net_deriv[sel] = fused_backward_packed(
                    table, dt, s[sel], rows[sel], indptr_t, spec.n_m,
                    counters=counters, chunk=chunk, pair_atom=pa_t,
                )

        if threaded:
            forces = engine.force_packed(net_deriv, deriv, indices,
                                         pair_center, indptr, n_total,
                                         pair_weights=pair_weights)
            virial = engine.virial_packed(net_deriv, deriv, rij, indptr,
                                          pair_weights=pair_weights)
        else:
            forces = prod_force_se_a_packed(
                net_deriv, deriv, centers, indices, indptr, n_total,
                pair_center=pair_center,
            )
            virial = prod_virial_se_a_packed(net_deriv, deriv, rij)
        if self.accum_dtype is not None:
            total_energy = float(energies.sum(dtype=self.accum_dtype))
        else:
            total_energy = float(energies.sum())
        extras = {}
        if splits is not None:
            # Per-member scalars: the energy sum runs over exactly the
            # member's atom slice (same pairwise-summation tree as a
            # standalone evaluation) and the virial einsum over exactly
            # its pair slice, so both are bitwise standalone-identical.
            per_member = []
            for lo, hi in splits:
                e_s = energies[lo:hi]
                if self.accum_dtype is not None:
                    e_m = float(e_s.sum(dtype=self.accum_dtype))
                else:
                    e_m = float(e_s.sum())
                plo, phi = int(indptr[lo]), int(indptr[hi])
                v_m = prod_virial_se_a_packed(
                    net_deriv[plo:phi], deriv[plo:phi], rij[plo:phi])
                per_member.append({"energy": e_m, "virial": v_m})
            extras["splits"] = per_member
        return EvalResult(
            energy=total_energy,
            atomic_energies=energies,
            forces=forces,
            virial=virial,
            extras=extras,
        )

    def evaluate(
        self,
        coords: np.ndarray,
        atom_types: np.ndarray,
        centers: np.ndarray,
        nlist: np.ndarray,
        counters: KernelCounters | None = None,
        engine=None,
    ) -> EvalResult:
        """Padded-list convenience wrapper (packs, then evaluates)."""
        indices, indptr = pack_nlist(np.asarray(nlist))
        return self.evaluate_packed(
            coords, atom_types, centers, indices, indptr, counters,
            engine=engine,
        )
