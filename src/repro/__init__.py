"""repro — reproduction of "Extending the limit of molecular dynamics
with ab initio accuracy to 10 billion atoms" (PPoPP 2022).

The package reproduces the paper's full system in Python:

* :mod:`repro.core` — the Deep Potential model, its fifth-order
  tabulation, fused kernels, redundancy removal, and the optimization-
  stage ladder (the paper's contribution);
* :mod:`repro.md` — the LAMMPS-like MD substrate (PBC, cell-list
  neighbor search, velocity-Verlet, thermodynamics);
* :mod:`repro.parallel` — simulated MPI, domain decomposition, ghost
  exchange, MPI+OpenMP schemes, and a distributed MD engine that matches
  the serial one bit-for-bit;
* :mod:`repro.perf` — calibrated machine/cost/memory/scaling models that
  regenerate the paper's Summit/Fugaku results (see DESIGN.md §3 for the
  substitution rationale);
* :mod:`repro.workloads` — the water and copper systems;
* :mod:`repro.baselines`, :mod:`repro.io`, :mod:`repro.analysis` —
  comparison pipelines, serialization, metrics.

Quickstart::

    from repro import quick_simulation
    sim = quick_simulation("copper", n_cells=(3, 3, 3))
    sim.run(99)
    print(sim.thermo_log[-1])
"""

from . import units
from .core import (
    CompressedDPModel,
    DPModel,
    EmbeddingTable,
    ModelSpec,
    Stage,
    StageLadder,
    TanhTable,
)
from .md import Box, DPForceField, LennardJones, NeighborSearch, Simulation
from .workloads import COPPER, WATER, build_copper, build_water

__version__ = "1.0.0"

__all__ = [
    "Box",
    "COPPER",
    "CompressedDPModel",
    "DPForceField",
    "DPModel",
    "EmbeddingTable",
    "LennardJones",
    "ModelSpec",
    "NeighborSearch",
    "Simulation",
    "Stage",
    "StageLadder",
    "TanhTable",
    "WATER",
    "build_copper",
    "build_water",
    "quick_simulation",
    "simulation_from_config",
    "units",
    "__version__",
]


def quick_simulation(system: str | None = None, n_cells=None,
                     reps=None, compressed: bool | None = None,
                     interval: float | None = None, seed: int | None = None,
                     threads: int | None = None, tracer=None, metrics=None,
                     flight=None, layout: str | None = None,
                     kernel_chunk: int | None = None,
                     precision: str | None = None,
                     accumulate: str | None = None,
                     config=None, **model_kwargs) -> Simulation:
    """One-call MD setup on a paper workload at laptop scale.

    Builds the configuration, a (downsized) Deep Potential model, and —
    by default — its compressed form, wired into a serial
    :class:`Simulation` with the paper's protocol defaults.

    Every knob resolves through the :mod:`repro.config` spine: an
    explicit keyword is the ``cli`` layer on top of ``config`` (or, when
    no config is given, on top of the library defaults + host layer).
    Library calls stay hermetic — the cached tuned-config layer is
    *not* consulted here; pass a fully resolved config (the CLI does)
    to opt in.  The resolved config rides on the returned simulation as
    ``sim.config`` (persisted into checkpoints, shown in run reports).

    Parameters
    ----------
    system:
        ``"copper"`` or ``"water"``.
    n_cells / reps:
        System size (FCC cells for copper, 192-atom cell replications
        for water).
    compressed:
        Use the tabulated + fused model (the paper's optimized code)
        instead of the baseline.
    threads:
        Shared-memory workers for the fused inference path (the
        ``threads`` factor of the paper's ``ranks x threads`` schemes);
        ``1`` is the exact serial path.
    tracer / metrics:
        Optional :class:`repro.obs.Tracer` / :class:`repro.obs.MetricsRegistry`
        instrumenting the run (span trace + JSONL metrics).
    flight:
        Flight-recorder convention: ``None`` (default) arms a fresh
        always-on :class:`repro.obs.FlightRecorder`, ``False`` disables
        recording, a recorder instance is used as-is.
    layout:
        Coefficient-table memory layout for the compressed model:
        ``"aos"`` (the operator-native default) or ``"soa"`` (the
        paper's transposed, coefficient-major fast path — bitwise
        identical in float64).  Ignored for the baseline model.
    kernel_chunk:
        Neighbor-chunk length for the fused kernels; ``None`` sizes it
        to the host's L2 cache.  Bitwise invariant — a pure performance
        knob.  Ignored for the baseline model.
    precision / accumulate:
        ``"f32"`` recasts the compressed model to the end-to-end
        single-precision fast path (:func:`repro.core.precision.
        to_single_precision`); ``accumulate="f64"`` keeps its
        reductions in double (the mixed scheme).  ``"f64"`` (default)
        is the bitwise reference path.  Ignored for the baseline model.
    config:
        A resolved :class:`repro.config.RunConfig`; explicit keywords
        override it field-by-field.
    model_kwargs:
        Overrides for :meth:`repro.workloads.Workload.model_spec`, e.g.
        ``d1=8, fit_width=32`` to shrink the nets.
    """
    from .config import resolve_run_config

    overrides: dict = {}

    def _set(section, name, value):
        if value is not None:
            overrides.setdefault(section, {})[name] = value

    _set("model", "system", system)
    _set("model", "interval", interval)
    _set("model", "seed", seed)
    if compressed is not None:
        _set("model", "baseline", not compressed)
    _set("parallel", "threads", threads)
    _set("kernel", "layout", layout)
    _set("kernel", "kernel_chunk", kernel_chunk)
    _set("kernel", "precision", precision)
    _set("kernel", "accumulate", accumulate)
    if n_cells is not None:
        _set("model", "cells", tuple(n_cells))
    elif reps is not None:
        _set("model", "cells", tuple(reps))
    if config is None:
        config = resolve_run_config("run", overrides=overrides,
                                    use_tuned=False)
    else:
        config = config.copy()
        config.apply(overrides, layer="cli")

    system = config.model.system
    seed = config.model.seed
    interval = config.model.interval
    compressed = not config.model.baseline
    threads = config.parallel.threads
    layout = config.kernel.layout
    kernel_chunk = config.kernel.kernel_chunk
    # The two size kwargs keep their historical library defaults when
    # nothing above the default layer set ``model.cells``.
    cells_set = config.provenance.get("model.cells", "default") != "default"
    if n_cells is None:
        n_cells = tuple(config.model.cells) if cells_set else (3, 3, 3)
    if reps is None:
        reps = tuple(config.model.cells) if cells_set else (2, 2, 2)

    if system == "copper":
        workload = COPPER
        coords, types, box = build_copper(n_cells)
    elif system == "water":
        workload = WATER
        coords, types, box = build_water(reps)
    else:
        raise ValueError(f"unknown system {system!r}")

    model_kwargs.setdefault("d1", 8)
    model_kwargs.setdefault("m_sub", 4)
    model_kwargs.setdefault("fit_width", 48)

    # Laptop-scale cutoff: small boxes cannot host the paper's cutoff
    # plus skin, so shrink it while keeping the dataflow identical.
    rcut, rcut_smth = workload.rcut, workload.rcut_smth
    if box.min_length() < 2.0 * (rcut + 2.0):
        rcut = min(4.5, box.min_length() / 2.0 - 1.0)
        rcut_smth = min(3.5, rcut - 1.0)
    model_kwargs.setdefault("sel", workload.sel_for_engine(rcut=rcut))
    spec = workload.model_spec(**model_kwargs)
    spec = ModelSpec(
        rcut=rcut, rcut_smth=rcut_smth, sel=spec.sel,
        n_types=spec.n_types, d1=spec.d1, m_sub=spec.m_sub,
        fit_width=spec.fit_width,
    )

    model = DPModel(spec)
    if compressed:
        model = CompressedDPModel.compress(
            model, interval=interval, layout=layout, chunk=kernel_chunk,
            accumulate=config.kernel.accumulate)
        if config.kernel.precision == "f32":
            from .core.precision import to_single_precision

            model = to_single_precision(model)
    return Simulation(
        coords, types, box,
        masses=workload.masses,
        forcefield=DPForceField(model, chunk=kernel_chunk),
        dt_fs=workload.dt_fs,
        temperature=config.model.temperature,
        sel=spec.sel,
        seed=seed,
        threads=threads,
        tracer=tracer,
        metrics=metrics,
        flight=flight,
        config=config,
    )


def simulation_from_config(config, *, tracer=None, metrics=None,
                           flight=None, **model_kwargs) -> Simulation:
    """Build a :class:`Simulation` purely from a resolved
    :class:`repro.config.RunConfig` — the config-spine entry point the
    CLI and the autotuner drive (:func:`quick_simulation` with no
    keyword overrides)."""
    return quick_simulation(config=config, tracer=tracer, metrics=metrics,
                            flight=flight, **model_kwargs)
