"""repro — reproduction of "Extending the limit of molecular dynamics
with ab initio accuracy to 10 billion atoms" (PPoPP 2022).

The package reproduces the paper's full system in Python:

* :mod:`repro.core` — the Deep Potential model, its fifth-order
  tabulation, fused kernels, redundancy removal, and the optimization-
  stage ladder (the paper's contribution);
* :mod:`repro.md` — the LAMMPS-like MD substrate (PBC, cell-list
  neighbor search, velocity-Verlet, thermodynamics);
* :mod:`repro.parallel` — simulated MPI, domain decomposition, ghost
  exchange, MPI+OpenMP schemes, and a distributed MD engine that matches
  the serial one bit-for-bit;
* :mod:`repro.perf` — calibrated machine/cost/memory/scaling models that
  regenerate the paper's Summit/Fugaku results (see DESIGN.md §3 for the
  substitution rationale);
* :mod:`repro.workloads` — the water and copper systems;
* :mod:`repro.baselines`, :mod:`repro.io`, :mod:`repro.analysis` —
  comparison pipelines, serialization, metrics.

Quickstart::

    from repro import quick_simulation
    sim = quick_simulation("copper", n_cells=(3, 3, 3))
    sim.run(99)
    print(sim.thermo_log[-1])
"""

from . import units
from .core import (
    CompressedDPModel,
    DPModel,
    EmbeddingTable,
    ModelSpec,
    Stage,
    StageLadder,
    TanhTable,
)
from .md import Box, DPForceField, LennardJones, NeighborSearch, Simulation
from .workloads import COPPER, WATER, build_copper, build_water

__version__ = "1.0.0"

__all__ = [
    "Box",
    "COPPER",
    "CompressedDPModel",
    "DPForceField",
    "DPModel",
    "EmbeddingTable",
    "LennardJones",
    "ModelSpec",
    "NeighborSearch",
    "Simulation",
    "Stage",
    "StageLadder",
    "TanhTable",
    "WATER",
    "build_copper",
    "build_water",
    "quick_simulation",
    "units",
    "__version__",
]


def quick_simulation(system: str = "copper", n_cells=(3, 3, 3),
                     reps=(2, 2, 2), compressed: bool = True,
                     interval: float = 0.01, seed: int = 0,
                     threads: int = 1, tracer=None, metrics=None,
                     flight=None, layout: str | None = None,
                     kernel_chunk: int | None = None,
                     **model_kwargs) -> Simulation:
    """One-call MD setup on a paper workload at laptop scale.

    Builds the configuration, a (downsized) Deep Potential model, and —
    by default — its compressed form, wired into a serial
    :class:`Simulation` with the paper's protocol defaults.

    Parameters
    ----------
    system:
        ``"copper"`` or ``"water"``.
    n_cells / reps:
        System size (FCC cells for copper, 192-atom cell replications
        for water).
    compressed:
        Use the tabulated + fused model (the paper's optimized code)
        instead of the baseline.
    threads:
        Shared-memory workers for the fused inference path (the
        ``threads`` factor of the paper's ``ranks x threads`` schemes);
        ``1`` is the exact serial path.
    tracer / metrics:
        Optional :class:`repro.obs.Tracer` / :class:`repro.obs.MetricsRegistry`
        instrumenting the run (span trace + JSONL metrics).
    flight:
        Flight-recorder convention: ``None`` (default) arms a fresh
        always-on :class:`repro.obs.FlightRecorder`, ``False`` disables
        recording, a recorder instance is used as-is.
    layout:
        Coefficient-table memory layout for the compressed model:
        ``"aos"`` (the operator-native default) or ``"soa"`` (the
        paper's transposed, coefficient-major fast path — bitwise
        identical in float64).  Ignored for the baseline model.
    kernel_chunk:
        Neighbor-chunk length for the fused kernels; ``None`` sizes it
        to the host's L2 cache.  Bitwise invariant — a pure performance
        knob.  Ignored for the baseline model.
    model_kwargs:
        Overrides for :meth:`repro.workloads.Workload.model_spec`, e.g.
        ``d1=8, fit_width=32`` to shrink the nets.
    """
    if system == "copper":
        workload = COPPER
        coords, types, box = build_copper(n_cells)
    elif system == "water":
        workload = WATER
        coords, types, box = build_water(reps)
    else:
        raise ValueError(f"unknown system {system!r}")

    model_kwargs.setdefault("d1", 8)
    model_kwargs.setdefault("m_sub", 4)
    model_kwargs.setdefault("fit_width", 48)

    # Laptop-scale cutoff: small boxes cannot host the paper's cutoff
    # plus skin, so shrink it while keeping the dataflow identical.
    rcut, rcut_smth = workload.rcut, workload.rcut_smth
    if box.min_length() < 2.0 * (rcut + 2.0):
        rcut = min(4.5, box.min_length() / 2.0 - 1.0)
        rcut_smth = min(3.5, rcut - 1.0)
    model_kwargs.setdefault("sel", workload.sel_for_engine(rcut=rcut))
    spec = workload.model_spec(**model_kwargs)
    spec = ModelSpec(
        rcut=rcut, rcut_smth=rcut_smth, sel=spec.sel,
        n_types=spec.n_types, d1=spec.d1, m_sub=spec.m_sub,
        fit_width=spec.fit_width,
    )

    model = DPModel(spec)
    if compressed:
        model = CompressedDPModel.compress(
            model, interval=interval, layout=layout, chunk=kernel_chunk)
    return Simulation(
        coords, types, box,
        masses=workload.masses,
        forcefield=DPForceField(model, chunk=kernel_chunk),
        dt_fs=workload.dt_fs,
        sel=spec.sel,
        seed=seed,
        threads=threads,
        tracer=tracer,
        metrics=metrics,
        flight=flight,
    )
