"""Velocity-Verlet time integration (the paper's Sec. 4 protocol)."""

from __future__ import annotations

import numpy as np

from ..units import FS_PER_PS, MVV_TO_EV

__all__ = ["VelocityVerlet"]


class VelocityVerlet:
    """Symplectic velocity-Verlet stepper.

    Works in MD units (Å, ps, eV, amu): accelerations are
    ``F[eV/Å] / (m[amu] * MVV_TO_EV)`` in Å/ps².

    The stepper is split into ``first_half`` / ``second_half`` so the
    driver can interleave the force evaluation (and, in the distributed
    engine, the ghost communication) between them — the same structure
    LAMMPS uses.
    """

    def __init__(self, masses: np.ndarray, dt_fs: float):
        if dt_fs <= 0:
            raise ValueError("timestep must be positive")
        self.masses = np.asarray(masses, dtype=np.float64)
        self.dt = dt_fs / FS_PER_PS  # ps
        self._inv_m = 1.0 / (self.masses * MVV_TO_EV)

    def first_half(self, coords, velocities, forces):
        """Half-kick + drift; returns updated ``(coords, velocities)``."""
        velocities = velocities + 0.5 * self.dt * forces * self._inv_m[:, None]
        coords = coords + self.dt * velocities
        return coords, velocities

    def second_half(self, velocities, forces):
        """Second half-kick with the freshly computed forces."""
        return velocities + 0.5 * self.dt * forces * self._inv_m[:, None]
