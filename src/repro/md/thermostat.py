"""Thermostats for NVT sampling.

The paper's benchmark protocol is NVE (velocities drawn once at 330 K),
but production MLMD campaigns — the applications the paper motivates —
run NVT.  Two standard thermostats:

* :class:`Berendsen` — weak-coupling velocity rescaling; fast
  equilibration, not canonical.
* :class:`Langevin` — stochastic friction + noise; canonical sampling,
  applied as a post-step impulse (the BAOAB 'O' block).
"""

from __future__ import annotations

import numpy as np

from ..units import BOLTZMANN_EV_K, MVV_TO_EV, kinetic_energy_ev, temperature_kelvin

__all__ = ["Berendsen", "Langevin"]


class Berendsen:
    """Berendsen weak-coupling thermostat.

    Velocities are scaled by ``sqrt(1 + dt/tau (T0/T - 1))`` each step.

    Parameters
    ----------
    temperature:
        Target temperature (K).
    tau_fs:
        Coupling time constant (fs); larger = gentler.
    """

    def __init__(self, temperature: float, tau_fs: float = 100.0):
        if temperature <= 0 or tau_fs <= 0:
            raise ValueError("temperature and tau must be positive")
        self.temperature = float(temperature)
        self.tau_fs = float(tau_fs)

    def apply(self, velocities: np.ndarray, masses: np.ndarray,
              dt_fs: float, rng=None) -> np.ndarray:
        ke = kinetic_energy_ev(masses, velocities)
        t_now = temperature_kelvin(ke, len(masses), n_constraints=3)
        if t_now <= 0:
            return velocities
        lam2 = 1.0 + (dt_fs / self.tau_fs) * (self.temperature / t_now - 1.0)
        return velocities * np.sqrt(max(lam2, 0.0))


class Langevin:
    """Langevin (O-block) thermostat: exact OU velocity update.

    ``v <- c1 v + c2 xi`` with ``c1 = exp(-gamma dt)`` and
    ``c2 = sqrt((1 - c1^2) kB T / m)`` — preserves the Maxwell-Boltzmann
    distribution exactly for any timestep.

    Parameters
    ----------
    temperature:
        Target temperature (K).
    friction_per_ps:
        Collision frequency gamma (1/ps).
    seed:
        Noise stream seed (deterministic trajectories for testing).
    """

    def __init__(self, temperature: float, friction_per_ps: float = 1.0,
                 seed: int = 0):
        if temperature <= 0 or friction_per_ps <= 0:
            raise ValueError("temperature and friction must be positive")
        self.temperature = float(temperature)
        self.gamma = float(friction_per_ps)
        self.rng = np.random.default_rng(seed)

    def apply(self, velocities: np.ndarray, masses: np.ndarray,
              dt_fs: float, rng=None) -> np.ndarray:
        rng = rng if rng is not None else self.rng
        dt_ps = dt_fs * 1e-3
        c1 = np.exp(-self.gamma * dt_ps)
        sigma2 = (1.0 - c1 * c1) * BOLTZMANN_EV_K * self.temperature / (
            masses * MVV_TO_EV)
        noise = rng.normal(size=velocities.shape) * np.sqrt(sigma2)[:, None]
        return c1 * velocities + noise
