"""Velocity initialization (Sec. 4: random velocities at 330 K)."""

from __future__ import annotations

import numpy as np

from ..units import BOLTZMANN_EV_K, MVV_TO_EV, kinetic_energy_ev, temperature_kelvin

__all__ = ["maxwell_boltzmann", "remove_com_drift", "rescale_to_temperature"]


def remove_com_drift(velocities: np.ndarray, masses: np.ndarray) -> np.ndarray:
    """Subtract the centre-of-mass velocity (LAMMPS ``velocity ... mom yes``)."""
    p = (masses[:, None] * velocities).sum(axis=0)
    return velocities - p / masses.sum()


def rescale_to_temperature(velocities: np.ndarray, masses: np.ndarray,
                           temperature: float) -> np.ndarray:
    """Scale velocities so the instantaneous temperature is exact."""
    n = len(masses)
    ke = kinetic_energy_ev(masses, velocities)
    t_now = temperature_kelvin(ke, n, n_constraints=3)
    if t_now <= 0:
        return velocities
    return velocities * np.sqrt(temperature / t_now)


def maxwell_boltzmann(masses: np.ndarray, temperature: float,
                      seed: int = 0) -> np.ndarray:
    """Maxwell-Boltzmann velocities (Å/ps) at the given temperature.

    Per-component standard deviation ``sqrt(kB T / m)`` in MD units; the
    centre-of-mass drift is removed and the result rescaled so the
    instantaneous temperature matches exactly.
    """
    masses = np.asarray(masses, dtype=np.float64)
    rng = np.random.default_rng(seed)
    sigma = np.sqrt(BOLTZMANN_EV_K * temperature / (masses * MVV_TO_EV))
    v = rng.normal(size=(len(masses), 3)) * sigma[:, None]
    v = remove_com_drift(v, masses)
    return rescale_to_temperature(v, masses, temperature)
