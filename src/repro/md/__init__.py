"""Mini-LAMMPS substrate: PBC box, lattices, O(N) neighbor search,
velocity-Verlet dynamics, thermodynamics — the MD engine the Deep
Potential model plugs into (the paper runs DeePMD-kit under LAMMPS).
"""

from .barostat import BerendsenBarostat
from .box import Box
from .integrator import VelocityVerlet
from .lattice import (
    COPPER_LATTICE_CONSTANT,
    SILICON_LATTICE_CONSTANT,
    copper_system,
    diamond_lattice,
    fcc_lattice,
    silicon_system,
    water_cell_192,
    water_system,
)
from .neighbor import NeighborData, NeighborSearch, brute_force_pairs, build_ghosts
from .pair_lj import LennardJones
from .simulation import PAPER_PROTOCOL_STEPS, DPForceField, Simulation
from .thermo import ThermoState, compute_thermo
from .thermostat import Berendsen, Langevin
from .velocity import maxwell_boltzmann

__all__ = [
    "Berendsen",
    "BerendsenBarostat",
    "Box",
    "COPPER_LATTICE_CONSTANT",
    "DPForceField",
    "Langevin",
    "LennardJones",
    "NeighborData",
    "NeighborSearch",
    "PAPER_PROTOCOL_STEPS",
    "Simulation",
    "ThermoState",
    "VelocityVerlet",
    "brute_force_pairs",
    "build_ghosts",
    "compute_thermo",
    "SILICON_LATTICE_CONSTANT",
    "copper_system",
    "diamond_lattice",
    "fcc_lattice",
    "silicon_system",
    "maxwell_boltzmann",
    "water_cell_192",
    "water_system",
]
