"""Builders for the paper's physical systems (Sec. 4).

* Copper: perfect face-centred-cubic lattice, lattice constant 3.634 Å.
* Water: a well-equilibrated 192-atom (64-molecule) liquid cell,
  replicated to the target size.  Without the authors' equilibrated
  snapshot we synthesize one: molecules on a jittered cubic grid with a
  rigid TIP-style geometry (0.9572 Å O-H, 104.52° H-O-H) at liquid
  density (~0.997 g/cm³) — same atom count, density, and species mix,
  which is what the performance path actually sees.
"""

from __future__ import annotations

import numpy as np

from .box import Box

__all__ = [
    "fcc_lattice",
    "diamond_lattice",
    "copper_system",
    "silicon_system",
    "water_cell_192",
    "water_system",
    "COPPER_LATTICE_CONSTANT",
    "SILICON_LATTICE_CONSTANT",
]

#: Silicon's diamond-cubic lattice constant (Å).
SILICON_LATTICE_CONSTANT = 5.431

#: The paper's copper lattice constant (Å).
COPPER_LATTICE_CONSTANT = 3.634

#: FCC basis in fractional coordinates (4 atoms per conventional cell).
_FCC_BASIS = np.array(
    [[0.0, 0.0, 0.0], [0.0, 0.5, 0.5], [0.5, 0.0, 0.5], [0.5, 0.5, 0.0]]
)


def fcc_lattice(n_cells, a: float):
    """Positions of a perfect FCC lattice of ``nx*ny*nz`` conventional cells.

    Returns ``(coords, box)`` with ``4 * nx * ny * nz`` atoms.
    """
    n_cells = np.asarray(n_cells, dtype=np.intp).reshape(3)
    if np.any(n_cells < 1):
        raise ValueError("cell counts must be >= 1")
    cells = np.array(
        [
            (i, j, k)
            for i in range(n_cells[0])
            for j in range(n_cells[1])
            for k in range(n_cells[2])
        ],
        dtype=np.float64,
    )
    frac = cells[:, None, :] + _FCC_BASIS[None, :, :]
    coords = (frac.reshape(-1, 3)) * a
    return coords, Box(n_cells * a)


def diamond_lattice(n_cells, a: float):
    """Positions of a diamond-cubic lattice (8 atoms per conventional cell).

    FCC plus the same FCC displaced by (1/4, 1/4, 1/4) — silicon,
    germanium, diamond.
    """
    n_cells = np.asarray(n_cells, dtype=np.intp).reshape(3)
    if np.any(n_cells < 1):
        raise ValueError("cell counts must be >= 1")
    fcc, box = fcc_lattice(n_cells, a)
    second = fcc + a * 0.25
    coords = np.concatenate([fcc, second], axis=0)
    return box.wrap(coords), box


def silicon_system(n_cells=(3, 3, 3)):
    """Silicon workload geometry: diamond-cubic Si, single atom type (0).

    The semiconductor-device application the paper's introduction and
    conclusion motivate; the liquid-silicon nucleation study it cites [4]
    used exactly this crystal as reference.
    """
    coords, box = diamond_lattice(n_cells, SILICON_LATTICE_CONSTANT)
    types = np.zeros(len(coords), dtype=np.intp)
    return coords, types, box


def copper_system(n_cells=(3, 3, 3)):
    """Copper workload geometry: FCC Cu, single atom type (0).

    ``n_cells=(12, 12, 12)`` gives the paper's 6,912-atom single-GPU
    system; ``(150, 150, 150)`` the 13.5-M-atom strong-scaling system.
    """
    coords, box = fcc_lattice(n_cells, COPPER_LATTICE_CONSTANT)
    types = np.zeros(len(coords), dtype=np.intp)
    return coords, types, box


def water_cell_192(seed: int = 7, jitter: float = 0.25):
    """A synthetic 192-atom (64-molecule) liquid-water cell.

    Molecules sit on a 4x4x4 grid with random rigid-body orientations and
    a small positional jitter; the cell length reproduces liquid density.
    Types: O = 0, H = 1 (DeePMD convention for its water models).
    """
    n_side = 4
    n_mol = n_side**3
    # 64 molecules at 0.997 g/cm^3: V = 64 * 18.015 amu / rho.
    cell_len = (n_mol * 18.015 / 0.997 / 0.602214076) ** (1.0 / 3.0)  # Å
    rng = np.random.default_rng(seed)

    # Rigid water geometry (Å / radians).
    r_oh = 0.9572
    theta = np.deg2rad(104.52)
    local = np.array(
        [
            [0.0, 0.0, 0.0],
            [r_oh * np.sin(theta / 2), 0.0, r_oh * np.cos(theta / 2)],
            [-r_oh * np.sin(theta / 2), 0.0, r_oh * np.cos(theta / 2)],
        ]
    )

    spacing = cell_len / n_side
    coords = np.empty((3 * n_mol, 3))
    types = np.empty(3 * n_mol, dtype=np.intp)
    idx = 0
    for i in range(n_side):
        for j in range(n_side):
            for k in range(n_side):
                center = (np.array([i, j, k]) + 0.5) * spacing
                center += rng.uniform(-jitter, jitter, 3)
                # Random rotation via QR of a Gaussian matrix.
                q, r = np.linalg.qr(rng.normal(size=(3, 3)))
                q *= np.sign(np.diag(r))
                mol = local @ q.T + center
                coords[idx:idx + 3] = mol
                types[idx:idx + 3] = (0, 1, 1)
                idx += 3
    box = Box([cell_len] * 3)
    return box.wrap(coords), types, box


def water_system(reps=(1, 1, 1), seed: int = 7):
    """Replicated water workload.

    ``reps=(5, 4, 3)`` roughly matches the paper's single-A64FX 18,432-atom
    run (it is exactly 192*5*4*3*... choose reps to hit paper sizes);
    192 atoms per base cell as in the paper.
    """
    base_coords, base_types, base_box = water_cell_192(seed=seed)
    coords, types, box = base_box.replicate(base_coords, base_types, reps)
    return coords, types, box
