"""Thermodynamic accounting (Sec. 4: KE/PE/temperature/pressure every 50 steps)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import EV_A3_TO_BAR, kinetic_energy_ev, temperature_kelvin

__all__ = ["ThermoState", "compute_thermo"]


@dataclass(frozen=True)
class ThermoState:
    """One thermodynamic sample."""

    step: int
    time_ps: float
    potential_ev: float
    kinetic_ev: float
    temperature_k: float
    pressure_bar: float

    @property
    def total_ev(self) -> float:
        return self.potential_ev + self.kinetic_ev

    def as_row(self) -> str:
        return (
            f"{self.step:8d} {self.time_ps:10.4f} {self.potential_ev:16.8f} "
            f"{self.kinetic_ev:14.8f} {self.temperature_k:10.3f} "
            f"{self.pressure_bar:12.3f}"
        )


def compute_thermo(step: int, time_ps: float, masses: np.ndarray,
                   velocities: np.ndarray, potential_ev: float,
                   virial: np.ndarray, volume_a3: float) -> ThermoState:
    """Assemble a :class:`ThermoState` from the current phase-space point.

    Pressure uses the virial route
    ``P = (2 KE + tr W) / (3 V)`` with ``W = sum r ⊗ f`` (eV), converted
    to bar.
    """
    n = len(masses)
    ke = kinetic_energy_ev(masses, velocities)
    temp = temperature_kelvin(ke, n, n_constraints=3)
    pressure = (2.0 * ke + float(np.trace(virial))) / (3.0 * volume_a3)
    return ThermoState(
        step=step,
        time_ps=time_ps,
        potential_ev=potential_ev,
        kinetic_ev=ke,
        temperature_k=temp,
        pressure_bar=pressure * EV_A3_TO_BAR,
    )
