"""Periodic orthorhombic simulation box.

The paper's workloads are orthorhombic (replicated water cells and a
perfect FCC copper lattice), so the box is axis-aligned with lengths
``(Lx, Ly, Lz)`` and full periodic boundary conditions, like LAMMPS'
``boundary p p p``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Box"]


class Box:
    """Axis-aligned periodic box with lengths ``lengths`` (Å)."""

    def __init__(self, lengths):
        lengths = np.asarray(lengths, dtype=np.float64).reshape(3)
        if np.any(lengths <= 0):
            raise ValueError("box lengths must be positive")
        self.lengths = lengths

    def __repr__(self) -> str:
        lx, ly, lz = self.lengths
        return f"Box({lx:.4f} x {ly:.4f} x {lz:.4f})"

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    def wrap(self, coords: np.ndarray) -> np.ndarray:
        """Map positions into the primary cell ``[0, L)`` per axis."""
        return np.mod(coords, self.lengths)

    def minimum_image(self, dr: np.ndarray) -> np.ndarray:
        """Nearest-image convention for displacement vectors."""
        return dr - self.lengths * np.round(dr / self.lengths)

    def distance(self, r1: np.ndarray, r2: np.ndarray) -> np.ndarray:
        """Minimum-image distances between matching rows of two arrays."""
        dr = self.minimum_image(np.asarray(r2) - np.asarray(r1))
        return np.linalg.norm(dr, axis=-1)

    def replicate(self, coords: np.ndarray, types: np.ndarray, reps) -> tuple:
        """Tile the box contents ``reps = (nx, ny, nz)`` times.

        Returns ``(coords, types, box)`` for the enlarged system — how the
        paper constructs its scaled systems from a 192-atom water cell.
        """
        reps = np.asarray(reps, dtype=np.intp).reshape(3)
        if np.any(reps < 1):
            raise ValueError("replication counts must be >= 1")
        shifts = np.array(
            [
                (i, j, k)
                for i in range(reps[0])
                for j in range(reps[1])
                for k in range(reps[2])
            ],
            dtype=np.float64,
        ) * self.lengths
        new_coords = (coords[None, :, :] + shifts[:, None, :]).reshape(-1, 3)
        new_types = np.tile(types, len(shifts))
        return new_coords, new_types, Box(self.lengths * reps)

    def min_length(self) -> float:
        return float(self.lengths.min())
