"""Berendsen barostat for NPT sampling.

Weak pressure coupling: each step the box and all coordinates are scaled
by ``mu = (1 - dt/tau_p * beta * (P0 - P))^(1/3)``, driving the virial
pressure toward the target.  Combined with a thermostat this gives the
NPT ensembles production campaigns (phase diagrams — e.g. the water
studies the paper cites) run in.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BerendsenBarostat"]


class BerendsenBarostat:
    """Isotropic Berendsen pressure coupling.

    Parameters
    ----------
    pressure_bar:
        Target pressure.
    tau_fs:
        Coupling time constant.
    compressibility_per_bar:
        Isothermal compressibility beta (default: liquid water's 4.6e-5).
    max_scaling:
        Per-step bound on |mu - 1| for stability.
    """

    def __init__(self, pressure_bar: float, tau_fs: float = 1000.0,
                 compressibility_per_bar: float = 4.6e-5,
                 max_scaling: float = 0.01):
        if tau_fs <= 0:
            raise ValueError("tau must be positive")
        self.pressure_bar = float(pressure_bar)
        self.tau_fs = float(tau_fs)
        self.beta = float(compressibility_per_bar)
        self.max_scaling = float(max_scaling)

    def scale_factor(self, current_pressure_bar: float, dt_fs: float) -> float:
        """The isotropic box-scaling factor ``mu`` for one step."""
        mu3 = 1.0 - (dt_fs / self.tau_fs) * self.beta * (
            self.pressure_bar - current_pressure_bar)
        mu = np.cbrt(np.clip(mu3, 0.1, 10.0))
        return float(np.clip(mu, 1.0 - self.max_scaling,
                             1.0 + self.max_scaling))

    def apply(self, sim, dt_fs: float) -> float:
        """Rescale a :class:`~repro.md.Simulation` in place; returns mu.

        Scales box lengths and coordinates; the neighbor structure is
        refreshed (a skin-triggered rebuild follows automatically if the
        deformation is large).
        """
        from .box import Box

        p_now = sim.current_thermo().pressure_bar
        mu = self.scale_factor(p_now, dt_fs)
        if mu != 1.0:
            sim.box = Box(sim.box.lengths * mu)
            sim.coords = sim.coords * mu
            sim._neighbors = sim._rebuild()
            sim.energy, sim.forces, sim.virial = sim._evaluate()
        return mu
