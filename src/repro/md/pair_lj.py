"""Truncated-and-shifted Lennard-Jones pair potential.

Not part of the paper's model — a cheap, analytically-simple control
force field used to validate the MD substrate (integrator, neighbor
lists, domain decomposition) independently of the Deep Potential stack,
and as the interaction in throw-away examples.
"""

from __future__ import annotations

import numpy as np

from .neighbor import NeighborData

__all__ = ["LennardJones"]


class LennardJones:
    """Single-species truncated, energy-shifted LJ: ``4ε[(σ/r)^12-(σ/r)^6]``.

    Implements the same force-field protocol as the DP adapters:
    ``compute(neighbors) -> (energy, local_forces, virial)``.
    """

    def __init__(self, epsilon: float = 0.4, sigma: float = 2.3,
                 rcut: float = 6.0):
        if rcut <= 0:
            raise ValueError("rcut must be positive")
        self.epsilon = float(epsilon)
        self.sigma = float(sigma)
        self.rcut = float(rcut)
        sr6 = (self.sigma / self.rcut) ** 6
        self._shift = 4.0 * self.epsilon * (sr6 * sr6 - sr6)

    def pair_energy(self, r: np.ndarray) -> np.ndarray:
        sr6 = (self.sigma / r) ** 6
        e = 4.0 * self.epsilon * (sr6 * sr6 - sr6) - self._shift
        return np.where(r < self.rcut, e, 0.0)

    def pair_force_over_r(self, r: np.ndarray) -> np.ndarray:
        """``-dE/dr / r`` — multiply by the displacement for the vector force."""
        sr6 = (self.sigma / r) ** 6
        f = 24.0 * self.epsilon * (2.0 * sr6 * sr6 - sr6) / (r * r)
        return np.where(r < self.rcut, f, 0.0)

    def compute(self, neighbors: NeighborData):
        """Energy/forces/virial from a packed neighbor structure.

        Each directed pair appears once per central atom; the half factor
        on the energy/virial compensates the double counting.
        """
        counts = neighbors.counts
        pair_center = np.repeat(neighbors.centers, counts)
        rij = (neighbors.ext_coords[neighbors.indices]
               - neighbors.ext_coords[pair_center])
        r = np.linalg.norm(rij, axis=1)
        r = np.maximum(r, 1e-12)

        energy = 0.5 * float(self.pair_energy(r).sum())
        # Every physical pair appears twice (once per central atom), so a
        # half weight makes force and energy gradients of the same sum.
        fij = 0.5 * self.pair_force_over_r(r)[:, None] * rij

        n_total = len(neighbors.ext_coords)
        forces_ext = np.zeros((n_total, 3))
        for ax in range(3):
            forces_ext[:, ax] += np.bincount(
                neighbors.indices, weights=fij[:, ax], minlength=n_total
            )
            forces_ext[:, ax] -= np.bincount(
                pair_center, weights=fij[:, ax], minlength=n_total
            )
        forces = neighbors.fold_forces(forces_ext)
        # fij already carries the half weight, so this is the unique-pair sum.
        virial = np.einsum("px,py->xy", fij, rij)
        return energy, forces, virial
