"""O(N) neighbor search: ghost shells, cell lists, Verlet skin.

Mirrors the LAMMPS machinery the paper's MD runs on:

* a ghost shell of periodic images within ``rcut + skin`` of the box
  faces is appended to the local atoms (the "light cyan" region of
  Fig. 1 (a)),
* atoms are binned into cells of at least ``rcut + skin`` so each atom
  scans only its 27 surrounding cells,
* the resulting Verlet list (pairs within ``rcut + skin``) is reused
  until an atom moves more than half the 2 Å skin; the paper rebuilds
  every 50 steps.

Lists are produced in both layouts the paper contrasts:

* **padded** — per-type column blocks of fixed capacity ``sel[t]`` padded
  with ``-1`` (the baseline's redundant-zero layout, Sec. 3.4.2),
* **packed** — CSR sorted by (type, distance) within each atom (the
  redundancy-free layout of the optimized code).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .box import Box

__all__ = ["NeighborData", "NeighborSearch", "build_ghosts", "brute_force_pairs"]

#: Verlet-skin width used throughout the paper (Å).
DEFAULT_SKIN = 2.0


def build_ghosts(coords: np.ndarray, box: Box, rhalo: float):
    """Append one shell of periodic images within ``rhalo`` of each face.

    Returns ``(ext_coords, owner)`` where ``owner[k]`` is the index of the
    real atom row ``k`` images (``owner[:n] = arange(n)``).  Requires every
    box length to exceed ``rhalo`` so a single image shell suffices.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = len(coords)
    if box.min_length() <= rhalo:
        raise ValueError(
            f"box too small for single ghost shell: min length "
            f"{box.min_length():.3f} <= halo {rhalo:.3f}"
        )
    ext = [coords]
    owners = [np.arange(n, dtype=np.intp)]
    lengths = box.lengths
    for sx in (-1, 0, 1):
        for sy in (-1, 0, 1):
            for sz in (-1, 0, 1):
                if sx == sy == sz == 0:
                    continue
                shift = np.array([sx, sy, sz], dtype=np.float64) * lengths
                # An image at coords+shift is relevant when it lands within
                # rhalo of the primary cell.
                mask = np.ones(n, dtype=bool)
                for ax, s in enumerate((sx, sy, sz)):
                    if s == 1:
                        mask &= coords[:, ax] <= rhalo  # image near upper face
                    elif s == -1:
                        mask &= coords[:, ax] >= lengths[ax] - rhalo
                if mask.any():
                    ext.append(coords[mask] + shift)
                    owners.append(np.nonzero(mask)[0].astype(np.intp))
    return np.concatenate(ext, axis=0), np.concatenate(owners)


def brute_force_pairs(coords: np.ndarray, box: Box, rcut: float):
    """All minimum-image pairs within ``rcut`` — O(N²) test reference.

    Returns a set of ``(i, j)`` ordered pairs (both directions).
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = len(coords)
    dr = coords[None, :, :] - coords[:, None, :]
    dr = box.minimum_image(dr)
    d = np.linalg.norm(dr, axis=2)
    np.fill_diagonal(d, np.inf)
    ii, jj = np.nonzero(d < rcut)
    return set(zip(ii.tolist(), jj.tolist()))


@dataclass
class NeighborData:
    """One built neighbor structure (both layouts + ghost bookkeeping)."""

    ext_coords: np.ndarray      #: (n_total, 3) local atoms then ghosts
    ext_types: np.ndarray       #: (n_total,) types per row
    owner: np.ndarray           #: (n_total,) owning local index per row
    centers: np.ndarray         #: (n_local,) = arange(n_local)
    nlist: np.ndarray           #: (n_local, capacity) padded, -1 pads
    indices: np.ndarray         #: CSR neighbor rows
    indptr: np.ndarray          #: CSR boundaries, len n_local + 1
    build_coords: np.ndarray    #: local positions at build time (skin check)
    ghost_shift: np.ndarray     #: (n_total, 3) periodic shift per row
    _pair_atom: np.ndarray | None = field(default=None, repr=False,
                                          compare=False)

    @property
    def n_local(self) -> int:
        return len(self.centers)

    @property
    def counts(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def pair_atom(self) -> np.ndarray:
        """Pair→local-atom map for the CSR layout, cached per build.

        The fused backward pass needs this expansion on every force
        evaluation; computing it once here amortizes the ``np.repeat``
        across the ~50 MD steps between rebuilds.
        """
        if self._pair_atom is None:
            self._pair_atom = np.repeat(self.centers, self.counts)
        return self._pair_atom

    @property
    def max_neighbors(self) -> int:
        return int(self.counts.max()) if self.n_local else 0

    def refresh_coords(self, coords: np.ndarray) -> None:
        """Update all rows from moved local positions without a rebuild —
        ghost rows keep the periodic shift recorded at build time
        (LAMMPS 'forward communication')."""
        self.ext_coords[...] = coords[self.owner] + self.ghost_shift

    def fold_forces(self, forces_ext: np.ndarray) -> np.ndarray:
        """Fold ghost-row forces back onto their owners (LAMMPS 'reverse
        communication')."""
        n_local = self.n_local
        out = np.zeros((n_local, 3))
        for ax in range(3):
            out[:, ax] = np.bincount(
                self.owner, weights=forces_ext[:, ax], minlength=n_local
            )
        return out

    def needs_rebuild(self, coords: np.ndarray, skin: float) -> bool:
        """True once any atom moved more than half the skin since build."""
        disp = coords - self.build_coords
        return bool(np.max(np.einsum("ij,ij->i", disp, disp)) > (0.5 * skin) ** 2)


class NeighborSearch:
    """Cell-list neighbor builder.

    Parameters
    ----------
    rcut:
        Model cutoff radius.
    skin:
        Verlet buffer (paper: 2 Å).
    sel:
        Optional per-type capacities defining the padded layout; when
        omitted the padded capacity adapts to the observed maximum.
    chunk:
        Local atoms processed per vectorized batch.
    engine:
        Optional :class:`repro.parallel.engine.ThreadedEngine`.  Cell
        binning scans each local-atom chunk independently against the
        read-only cell table, so chunks are distributed over the worker
        pool; parts are concatenated in chunk order, making the threaded
        build bitwise identical to the serial one.
    """

    def __init__(self, rcut: float, skin: float = DEFAULT_SKIN,
                 sel=None, chunk: int = 4096, engine=None):
        if rcut <= 0 or skin < 0:
            raise ValueError("need rcut > 0 and skin >= 0")
        self.rcut = float(rcut)
        self.skin = float(skin)
        self.sel = None if sel is None else tuple(int(s) for s in sel)
        self.chunk = int(chunk)
        self.engine = engine

    @property
    def rlist(self) -> float:
        """Verlet-list radius ``rcut + skin``."""
        return self.rcut + self.skin

    # ------------------------------------------------------------------ build
    def build(self, coords: np.ndarray, types: np.ndarray, box: Box,
              truncate: bool = False) -> NeighborData:
        """Build both neighbor layouts for the current configuration."""
        coords = box.wrap(np.asarray(coords, dtype=np.float64))
        types = np.asarray(types, dtype=np.intp)
        n_local = len(coords)
        rlist = self.rlist

        ext_coords, owner = build_ghosts(coords, box, rlist)
        ext_types = types[owner]

        pair_i, pair_j, dist = self._candidate_pairs(coords, ext_coords, rlist)

        n_types = (int(types.max()) + 1) if n_local else 1
        if self.sel is not None:
            n_types = max(n_types, len(self.sel))
        # Sort pairs by (atom, neighbor type, distance) — DeePMD's layout.
        order = np.lexsort((dist, ext_types[pair_j], pair_i))
        pair_i, pair_j = pair_i[order], pair_j[order]
        pt = ext_types[pair_j]

        counts = np.bincount(pair_i, minlength=n_local)
        indptr = np.zeros(n_local + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])

        nlist, pair_i, pair_j, indptr = self._pad(
            pair_i, pair_j, pt, indptr, n_local, n_types, truncate
        )
        return NeighborData(
            ext_coords=ext_coords,
            ext_types=ext_types,
            owner=owner,
            centers=np.arange(n_local, dtype=np.intp),
            nlist=nlist,
            indices=pair_j,
            indptr=indptr,
            build_coords=coords.copy(),
            ghost_shift=ext_coords - coords[owner],
        )

    def build_extended(self, coords: np.ndarray, types: np.ndarray,
                       ghost_coords: np.ndarray, ghost_types: np.ndarray,
                       truncate: bool = False) -> NeighborData:
        """Build neighbor lists when the ghost shell is supplied externally
        (the distributed engine's halo exchange).  Coordinates are used
        as-is — no wrapping, no image construction.
        """
        coords = np.asarray(coords, dtype=np.float64)
        types = np.asarray(types, dtype=np.intp)
        n_local = len(coords)
        ext_coords = np.concatenate([coords, np.asarray(ghost_coords,
                                                        dtype=np.float64)])
        ext_types = np.concatenate([types, np.asarray(ghost_types,
                                                      dtype=np.intp)])
        pair_i, pair_j, dist = self._candidate_pairs(coords, ext_coords,
                                                     self.rlist)
        n_types = int(ext_types.max()) + 1 if len(ext_types) else 1
        if self.sel is not None:
            n_types = max(n_types, len(self.sel))
        order = np.lexsort((dist, ext_types[pair_j], pair_i))
        pair_i, pair_j = pair_i[order], pair_j[order]
        pt = ext_types[pair_j]
        counts = np.bincount(pair_i, minlength=n_local)
        indptr = np.zeros(n_local + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        nlist, pair_i, pair_j, indptr = self._pad(
            pair_i, pair_j, pt, indptr, n_local, n_types, truncate
        )
        return NeighborData(
            ext_coords=ext_coords,
            ext_types=ext_types,
            owner=np.arange(len(ext_coords), dtype=np.intp),
            centers=np.arange(n_local, dtype=np.intp),
            nlist=nlist,
            indices=pair_j,
            indptr=indptr,
            build_coords=coords.copy(),
            ghost_shift=np.zeros_like(ext_coords),
        )

    # -------------------------------------------------------------- internals
    def _candidate_pairs(self, coords, ext_coords, rlist):
        """Cell-list candidate generation, distance-filtered to ``rlist``."""
        if len(coords) == 0 or len(ext_coords) == 0:
            empty_i = np.zeros(0, dtype=np.intp)
            return empty_i, empty_i.copy(), np.zeros(0)
        origin = ext_coords.min(axis=0)
        span = ext_coords.max(axis=0) - origin
        n_cells = np.maximum(1, np.floor(span / rlist).astype(np.intp))
        cell_size = span / n_cells + 1e-12

        def cell_of(pts):
            c = np.floor((pts - origin) / cell_size).astype(np.intp)
            return np.clip(c, 0, n_cells - 1)

        ext_cell = cell_of(ext_coords)
        flat = np.ravel_multi_index(ext_cell.T, n_cells)
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        total_cells = int(np.prod(n_cells))
        starts = np.searchsorted(sorted_flat, np.arange(total_cells + 1))

        # Padded per-cell member table for vectorized gathering.
        cell_counts = np.diff(starts)
        m = max(1, int(cell_counts.max()))
        members = np.full((total_cells, m), -1, dtype=np.intp)
        within = np.arange(len(order)) - np.repeat(starts[:-1], cell_counts)
        members[sorted_flat, within] = order

        n_local = len(coords)
        local_cell = cell_of(coords)
        offsets = np.array(
            [(i, j, k) for i in (-1, 0, 1) for j in (-1, 0, 1) for k in (-1, 0, 1)],
            dtype=np.intp,
        )
        r2 = rlist * rlist

        def bin_block(block):
            lo, hi = block
            cells27 = local_cell[lo:hi, None, :] + offsets[None, :, :]
            # Ghost shell guarantees neighbors live inside the grid; clip
            # only protects against boundary rounding.
            valid = np.all((cells27 >= 0) & (cells27 < n_cells), axis=2)
            flat27 = np.ravel_multi_index(
                np.clip(cells27, 0, n_cells - 1).transpose(2, 0, 1), n_cells
            )
            cand = members[flat27]  # (chunk, 27, m)
            cand = np.where(valid[..., None], cand, -1).reshape(hi - lo, -1)
            ok = cand >= 0
            safe = np.where(ok, cand, 0)
            dr = ext_coords[safe] - coords[lo:hi, None, :]
            d2 = np.einsum("ijk,ijk->ij", dr, dr)
            self_row = cand == (np.arange(lo, hi)[:, None])
            keep = ok & (d2 < r2) & ~self_row
            ii, jj = np.nonzero(keep)
            return ((ii + lo).astype(np.intp), cand[ii, jj],
                    np.sqrt(d2[ii, jj]))

        blocks = [(lo, min(lo + self.chunk, n_local))
                  for lo in range(0, n_local, self.chunk)]
        if self.engine is not None and self.engine.n_threads > 1:
            parts = self.engine.map(bin_block, blocks)
        else:
            parts = [bin_block(b) for b in blocks]
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
        )

    def _pad(self, pair_i, pair_j, pair_types, indptr, n_local, n_types,
             truncate):
        """Fill the padded per-type-block layout; re-derive CSR if truncated."""
        if self.sel is not None:
            sel = np.asarray(self.sel, dtype=np.intp)
            if len(sel) < n_types:
                raise ValueError("sel shorter than the number of atom types")
        else:
            # Adaptive capacity: observed max per type, rounded up.
            sel = np.zeros(n_types, dtype=np.intp)
            for t in range(n_types):
                mask = pair_types == t
                if mask.any():
                    sel[t] = np.bincount(pair_i[mask], minlength=n_local).max()
        offsets = np.zeros(len(sel) + 1, dtype=np.intp)
        np.cumsum(sel, out=offsets[1:])
        capacity = int(offsets[-1])

        # Rank of each pair within its (atom, type) group.
        group = pair_i * len(sel) + pair_types
        grp_counts = np.bincount(group, minlength=n_local * len(sel))
        grp_starts = np.zeros(n_local * len(sel) + 1, dtype=np.intp)
        np.cumsum(grp_counts, out=grp_starts[1:])
        rank = np.arange(len(pair_i)) - grp_starts[group]

        over = rank >= sel[pair_types]
        if over.any():
            if not truncate:
                worst = int((rank.max(initial=-1)) + 1)
                raise ValueError(
                    f"neighbor overflow: an atom has {worst} neighbors of one "
                    f"type, capacity sel={tuple(sel.tolist())}; enlarge sel or "
                    f"pass truncate=True"
                )
            keep = ~over
            pair_i, pair_j = pair_i[keep], pair_j[keep]
            pair_types, rank = pair_types[keep], rank[keep]
            counts = np.bincount(pair_i, minlength=n_local)
            indptr = np.zeros(n_local + 1, dtype=np.intp)
            np.cumsum(counts, out=indptr[1:])

        nlist = np.full((n_local, capacity), -1, dtype=np.intp)
        nlist[pair_i, offsets[pair_types] + rank] = pair_j
        return nlist, pair_i, pair_j, indptr
