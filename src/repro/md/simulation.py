"""The serial MD driver and the force-field adapters.

Implements the paper's measurement protocol (Sec. 4): velocity-Verlet,
99 MD steps (forces and energy evaluated 100 times), neighbor list with a
2 Å buffer rebuilt every 50 steps, thermodynamic data collected every 50
steps, initial velocities drawn at 330 K.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.backend import EvalRequest, backend_for
from ..obs.trace import NULL_TRACER
from .box import Box
from .integrator import VelocityVerlet
from .neighbor import DEFAULT_SKIN, NeighborData, NeighborSearch
from .thermo import ThermoState, compute_thermo
from .velocity import maxwell_boltzmann

__all__ = ["DPForceField", "Simulation", "PAPER_PROTOCOL_STEPS"]

#: MD steps in the paper's benchmark protocol (energy/forces hit 100x).
PAPER_PROTOCOL_STEPS = 99

#: The paper rebuilds the neighbor list every 50 steps.
PAPER_REBUILD_EVERY = 50


class DPForceField:
    """Adapter running a (baseline or compressed) DP model inside MD.

    The model is resolved to a :class:`~repro.core.backend.ForceBackend`
    once at construction (:func:`~repro.core.backend.backend_for`): the
    compressed model lands on the packed adapter, the baseline
    :class:`~repro.core.model.DPModel` on the padded fallback.  Every
    evaluation goes through ``backend.evaluate(EvalRequest)`` — there is
    no per-step capability probing.

    ``engine`` (a :class:`repro.parallel.engine.ThreadedEngine`) rides
    on the request; engine-capable backends run the fused kernels
    sharded over the worker pool, others ignore it.

    ``tracer`` (a :class:`repro.obs.Tracer`) records every model
    evaluation as a ``fused_forward`` span — the region the paper's
    Sec. 2.2 profile attributes >90% of the step to — carrying the
    resolved backend's name as a ``backend=`` attribute.

    ``chunk`` overrides the fused kernels' neighbor-chunk length on
    every request this force field issues (``None`` keeps the model's
    own setting, itself defaulting to the cache-aware automatic).
    Results are bitwise invariant under this knob — it is purely a
    cache/performance tunable.
    """

    def __init__(self, model, engine=None, tracer=None, backend=None,
                 chunk: int | None = None):
        self.model = model
        self.backend = backend_for(model) if backend is None else backend
        self.rcut = model.spec.rcut
        self.engine = engine
        self.chunk = int(chunk) if chunk is not None else None
        self.tracer = NULL_TRACER if tracer is None else tracer

    def rebind(self, model=None) -> "DPForceField":
        """Re-resolve the backend (restart replay, model swap).

        A checkpoint restart rebuilds the simulation around an existing
        force field whose model may have been replaced (e.g. recompressed
        or recast) since the backend was first resolved; re-resolving
        keeps the adapter and the model in lockstep.
        """
        if model is not None:
            self.model = model
        self.backend = backend_for(self.model)
        self.rcut = self.model.spec.rcut
        return self

    def compute(self, neighbors: NeighborData):
        with self.tracer.span("fused_forward", backend=self.backend.name):
            result = self.backend.evaluate(
                EvalRequest.from_neighbors(neighbors, engine=self.engine,
                                           chunk=self.chunk)
            )
            forces = neighbors.fold_forces(result.forces)
        return result.energy, forces, result.virial


@dataclass
class StepStats:
    """Bookkeeping the scaling analysis consumes."""

    n_steps: int = 0
    n_force_evals: int = 0
    n_neighbor_builds: int = 0
    wall_seconds: float = 0.0


class Simulation:
    """Serial NVE molecular dynamics with the paper's protocol defaults.

    Parameters
    ----------
    coords, types, box:
        Initial configuration (types index into ``masses``).
    masses:
        Per-type masses (amu).
    forcefield:
        Any object with ``compute(neighbors) -> (energy, forces, virial)``
        and an ``rcut`` attribute.
    dt_fs:
        Timestep (paper: 0.5 fs water, 1.0 fs copper).
    sel:
        Optional per-type padded capacities forwarded to the neighbor
        search (required by the baseline model's padded layout).
    threads:
        Shared-memory worker count (the ``threads`` factor of the
        paper's ``ranks x threads`` schemes, Sec. 3.5.4).  ``> 1``
        creates a persistent :class:`repro.parallel.engine.ThreadedEngine`
        shared by the neighbor binning and the force field's fused
        kernels.  ``1`` (default) is the exact serial path.
    engine:
        Pre-built engine to share instead of creating one from
        ``threads`` (e.g. one pool across several simulations).
    monitor:
        Optional :class:`repro.robust.HealthMonitor` consulted every MD
        step; violations raise typed
        :class:`~repro.robust.errors.SimulationHealthError` subclasses
        instead of silently corrupting the trajectory.
    injector:
        Optional :class:`repro.robust.FaultInjector` (testing/validation
        of the recovery paths); wired through
        :meth:`attach_injector`.
    tracer:
        Optional :class:`repro.obs.Tracer`; the MD loop records
        ``step`` / ``neighbor_rebuild`` / ``guard_check`` /
        ``checkpoint_write`` spans (and wires the force field's
        ``fused_forward`` span and the engine's per-shard lanes).
        Defaults to the no-op tracer — zero overhead.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; the MD loop
        streams one JSONL row per step (wall seconds, rebuild flag) and
        accumulates ``md_steps`` / ``neighbor_rebuilds`` counters and
        ``step_seconds`` / ``guard_seconds`` histograms.
    flight:
        The always-on :class:`repro.obs.FlightRecorder` black box.
        ``None`` (default) creates a fresh bounded recorder; ``False``
        disables recording entirely; an existing recorder is shared
        (recovery/distributed drivers pass one so the black box spans
        rollbacks and re-spawns).  The step loop records ``step`` /
        ``neighbor_rebuild`` / ``checkpoint`` events, mirrors fired
        faults, keeps the last-N thermo rows, and on a
        ``SimulationHealthError`` / ``DeadlineExceededError`` escaping
        :meth:`run` records the terminal event (dumping to disk when
        ``flight.dump_dir`` is set).
    velocities:
        Explicit initial velocities (Å/ps).  When given, the
        Maxwell–Boltzmann draw is skipped entirely — used by restart,
        which would otherwise waste a draw that is immediately
        overwritten.
    defer_init:
        Internal — skip the initial wrap/neighbor-build/force-evaluation
        so :func:`repro.io.checkpoint.restart_simulation` can install
        the checkpointed state (including the exact mid-interval
        neighbor structure) first.
    """

    def __init__(self, coords, types, box: Box, masses, forcefield,
                 dt_fs: float, temperature: float = 330.0,
                 skin: float = DEFAULT_SKIN, sel=None,
                 rebuild_every: int = PAPER_REBUILD_EVERY, seed: int = 0,
                 thermostat=None, threads: int = 1, engine=None,
                 monitor=None, injector=None, tracer=None, metrics=None,
                 flight=None, velocities=None, config=None,
                 defer_init: bool = False):
        from ..obs.flight import ensure_flight

        #: Optional resolved :class:`repro.config.RunConfig` this run
        #: was built from.  Carried so checkpoints persist it (restart
        #: reproduces threads/layout/chunk/guard settings) and run
        #: reports can show the resolved values with layer provenance.
        self.config = config
        self.box = box
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = metrics
        self.flight = ensure_flight(flight)
        if self.flight is not None and metrics is not None \
                and self.flight.metrics is None:
            self.flight.metrics = metrics
        coords = np.asarray(coords, dtype=np.float64)
        # A restart must keep the checkpointed (possibly drifted-out-of-
        # box) positions bit-for-bit; fresh runs normalize into the box.
        self.coords = coords if defer_init else box.wrap(coords)
        self.types = np.asarray(types, dtype=np.intp)
        per_type = np.asarray(masses, dtype=np.float64)
        self.masses = per_type[self.types]
        self.forcefield = forcefield
        if int(threads) < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if engine is None and int(threads) > 1:
            from ..parallel.engine import ThreadedEngine

            engine = ThreadedEngine(int(threads))
        self.engine = engine
        if engine is not None and getattr(forcefield, "engine", None) is None:
            forcefield.engine = engine
        if engine is not None and self.flight is not None \
                and getattr(engine, "flight", None) is None:
            engine.flight = self.flight
        if self.tracer:
            # Wire the span lanes: the force field's fused_forward span
            # and the engine's per-shard lanes share this run's tracer.
            if getattr(forcefield, "tracer", None) in (None, NULL_TRACER):
                forcefield.tracer = self.tracer
            if engine is not None and getattr(engine, "tracer", None) is None:
                engine.tracer = self.tracer
        self.search = NeighborSearch(forcefield.rcut, skin=skin, sel=sel,
                                     engine=engine)
        self.integrator = VelocityVerlet(self.masses, dt_fs)
        if velocities is not None:
            self.velocities = np.asarray(velocities, dtype=np.float64)
        else:
            self.velocities = maxwell_boltzmann(self.masses, temperature,
                                                seed)
        #: Optional NVT thermostat (``apply(v, m, dt_fs) -> v``), applied
        #: after each full velocity-Verlet step; None = NVE (the paper's
        #: benchmark protocol).
        self.thermostat = thermostat
        self.dt_fs = float(dt_fs)
        self.rebuild_every = int(rebuild_every)
        self.step = 0
        self.stats = StepStats()
        self.thermo_log: list[ThermoState] = []
        self.monitor = monitor
        self.injector = None
        if injector is not None:
            self.attach_injector(injector)

        if not defer_init:
            self._neighbors = self._rebuild()
            self.energy, self.forces, self.virial = self._evaluate()
            self.stats.n_force_evals += 1

    def attach_injector(self, injector) -> None:
        """Install a fault injector, wiring the engine's per-shard hook."""
        self.injector = injector
        if injector is not None and self.engine is not None:
            self.engine.fault_hook = injector.worker_fault

    # ------------------------------------------------------------------ core
    def _rebuild(self) -> NeighborData:
        self.coords = self.box.wrap(self.coords)
        self.stats.n_neighbor_builds += 1
        try:
            return self.search.build(self.coords, self.types, self.box)
        except ValueError as exc:
            if "neighbor overflow" in str(exc):
                from ..robust.errors import NeighborOverflowError

                raise NeighborOverflowError(
                    str(exc), step=self.step,
                    sel=self.search.sel) from exc
            raise

    def _evaluate(self):
        return self.forcefield.compute(self._neighbors)

    def _refresh_neighbor_coords(self):
        """Propagate moved positions into the extended array without a
        rebuild (LAMMPS 'forward communication' between rebuilds)."""
        self._neighbors.refresh_coords(self.coords)

    def run(self, n_steps: int = PAPER_PROTOCOL_STEPS,
            thermo_every: int = PAPER_REBUILD_EVERY, *,
            checkpoint_every: int = 0,
            checkpoint_manager=None,
            guard_every: int | None = None,
            deadline=None) -> list[ThermoState]:
        """Advance ``n_steps``; returns the thermo samples collected.

        ``checkpoint_every``/``checkpoint_manager`` save a restart file
        every N steps through a
        :class:`repro.robust.CheckpointManager`; checkpoints are written
        only after the step passes the health guards, so a corrupted
        state is never checkpointed.  When ``self.monitor`` is set it is
        (re-)attached at run start — a run restarted from a checkpoint
        measures energy drift against the checkpointed state.

        ``guard_every`` amortizes the guard cost: health checks run only
        every K steps (default: the monitor's
        :attr:`~repro.robust.GuardTolerances.guard_every`).  Corruption
        born between guarded steps propagates through the integrator
        (NaN arithmetic stays NaN) and is caught at the next guarded
        step; the final step is always guarded.  Checkpoints at
        unguarded steps are suppressed so a not-yet-validated state is
        never persisted.

        ``deadline`` (seconds, or a :class:`repro.robust.Deadline`)
        bounds the run on the wall clock: it is checked at the top of
        every step, so a run never starts a step it has no budget for.
        Expiry raises :class:`~repro.robust.errors.DeadlineExceededError`
        — the completed steps (and their checkpoints) remain valid.
        """
        import time as _time

        from ..robust.errors import (DeadlineExceededError,
                                     SimulationHealthError)

        monitor, injector = self.monitor, self.injector
        tracer, metrics = self.tracer, self.metrics
        flight = self.flight
        fault_seen = len(injector.log) if injector is not None else 0
        if deadline is not None:
            from ..robust.deadline import Deadline

            deadline = Deadline.of(deadline)
        if monitor is not None:
            monitor.attach(self)
        last_step = self.step + int(n_steps)
        start = _time.perf_counter()
        try:
            self._record_thermo(thermo_every, force=True)
            for _ in range(n_steps):
                if deadline:
                    deadline.check("run", step=self.step, metrics=metrics)
                t_step = _time.perf_counter() if metrics is not None else 0.0
                rebuilt = False
                guard_seconds = 0.0
                with tracer.span("step", step=self.step + 1):
                    prev_coords = self.coords
                    self.coords, self.velocities = \
                        self.integrator.first_half(
                            self.coords, self.velocities, self.forces
                        )
                    self.step += 1
                    if injector is not None:
                        injector.begin_step(self.step)
                    if (self.step % self.rebuild_every == 0
                            or self._neighbors.needs_rebuild(
                                self.coords, self.search.skin)):
                        with tracer.span("neighbor_rebuild",
                                         step=self.step):
                            self._neighbors = self._rebuild()
                        rebuilt = True
                        if metrics is not None:
                            metrics.inc("neighbor_rebuilds")
                        if flight is not None:
                            flight.record("neighbor_rebuild",
                                          step=self.step)
                    else:
                        self._refresh_neighbor_coords()
                    self.energy, self.forces, self.virial = self._evaluate()
                    if injector is not None:
                        self.energy, self.forces = injector.corrupt_state(
                            self.step, self.energy, self.forces
                        )
                    self.stats.n_force_evals += 1
                    guarded = monitor is not None and monitor.should_check(
                        self.step, last_step, guard_every)
                    if guarded:
                        # NaN/Inf must be caught *before* the second
                        # half-kick integrates corrupt forces into the
                        # velocities.
                        g0 = _time.perf_counter()
                        with tracer.span("guard_check", step=self.step):
                            monitor.check_finite(self)
                        guard_seconds += _time.perf_counter() - g0
                    self.velocities = self.integrator.second_half(
                        self.velocities, self.forces
                    )
                    if self.thermostat is not None:
                        self.velocities = self.thermostat.apply(
                            self.velocities, self.masses, self.dt_fs
                        )
                    if guarded:
                        g0 = _time.perf_counter()
                        with tracer.span("guard_check", step=self.step):
                            monitor.check_step(self, prev_coords)
                        guard_seconds += _time.perf_counter() - g0
                    self._record_thermo(thermo_every)
                    self.stats.n_steps += 1
                    if (checkpoint_every and checkpoint_manager is not None
                            and self.step % checkpoint_every == 0
                            and (monitor is None or guarded)):
                        with tracer.span("checkpoint_write",
                                         step=self.step):
                            checkpoint_manager.save(self)
                        if flight is not None:
                            flight.record("checkpoint", step=self.step)
                if flight is not None:
                    flight.record("step", step=self.step)
                    if injector is not None \
                            and len(injector.log) > fault_seen:
                        for entry in injector.log[fault_seen:]:
                            flight.record(
                                "fault", fault=entry.get("kind"),
                                **{k: v for k, v in entry.items()
                                   if k != "kind"})
                        fault_seen = len(injector.log)
                if metrics is not None:
                    wall = _time.perf_counter() - t_step
                    metrics.inc("md_steps")
                    metrics.observe("step_seconds", wall)
                    if guarded:
                        metrics.observe("guard_seconds", guard_seconds)
                    metrics.emit_step(self.step, wall_seconds=wall,
                                      rebuild=rebuilt)
        except (SimulationHealthError, DeadlineExceededError) as err:
            if flight is not None:
                # Mirror faults that fired on the dying step before the
                # terminal event, then dump the black box (disk write
                # only when a dump_dir is configured).
                if injector is not None and len(injector.log) > fault_seen:
                    for entry in injector.log[fault_seen:]:
                        flight.record(
                            "fault", fault=entry.get("kind"),
                            **{k: v for k, v in entry.items()
                               if k != "kind"})
                flight.failure(err, step=self.step)
            raise
        finally:
            self.stats.wall_seconds += _time.perf_counter() - start
        return self.thermo_log

    # --------------------------------------------------------------- thermo
    @property
    def time_ps(self) -> float:
        return self.step * self.integrator.dt

    def _record_thermo(self, every: int, force: bool = False) -> None:
        if force or (every and self.step % every == 0):
            state = compute_thermo(
                self.step, self.time_ps, self.masses, self.velocities,
                self.energy, self.virial, self.box.volume,
            )
            self.thermo_log.append(state)
            if self.flight is not None:
                self.flight.record_thermo({
                    "step": state.step,
                    "time_ps": state.time_ps,
                    "potential_ev": state.potential_ev,
                    "kinetic_ev": state.kinetic_ev,
                    "temperature_k": state.temperature_k,
                    "pressure_bar": state.pressure_bar,
                })

    def current_thermo(self) -> ThermoState:
        return compute_thermo(
            self.step, self.time_ps, self.masses, self.velocities,
            self.energy, self.virial, self.box.volume,
        )

    # ------------------------------------------------------------ throughput
    def ns_per_day(self) -> float:
        """Simulated nanoseconds per wall-clock day at the measured rate."""
        if self.stats.wall_seconds <= 0 or self.stats.n_steps == 0:
            return 0.0
        sim_ns = self.stats.n_steps * self.integrator.dt * 1e-3
        return sim_ns / self.stats.wall_seconds * 86400.0
