"""Simulation checkpoint/restart (LAMMPS-style restart files).

Week-long campaigns at the paper's scales live and die by restart
fidelity: a checkpoint must capture the full phase-space point plus the
integrator clock so a restarted run continues the *same* trajectory.
Format: a single ``.npz``, no pickling.
"""

from __future__ import annotations

import json

import numpy as np

from ..md.box import Box
from ..md.simulation import Simulation

__all__ = ["save_checkpoint", "load_checkpoint", "restart_simulation"]


def save_checkpoint(path: str, sim: Simulation) -> None:
    """Write the simulation's full restartable state."""
    meta = {
        "step": sim.step,
        "dt_fs": sim.dt_fs,
        "rebuild_every": sim.rebuild_every,
        "skin": sim.search.skin,
        "rcut": sim.search.rcut,
        "sel": list(sim.search.sel) if sim.search.sel else None,
        "n_force_evals": sim.stats.n_force_evals,
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        coords=sim.coords,
        velocities=sim.velocities,
        types=sim.types,
        masses=sim.masses,
        box_lengths=sim.box.lengths,
        forces=sim.forces,
    )


def load_checkpoint(path: str) -> dict:
    """Read a checkpoint into a plain dict (no model/forcefield inside)."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        return {
            "meta": meta,
            "coords": data["coords"].copy(),
            "velocities": data["velocities"].copy(),
            "types": data["types"].copy(),
            "masses": data["masses"].copy(),
            "box": Box(data["box_lengths"]),
            "forces": data["forces"].copy(),
        }


def restart_simulation(path: str, forcefield, thermostat=None) -> Simulation:
    """Rebuild a :class:`Simulation` from a checkpoint.

    The force field (model) is supplied by the caller — checkpoints
    store the *state*, models are stored via
    :func:`repro.io.save_compressed`.  The restarted run continues the
    original trajectory exactly (same positions, velocities, step
    counter, rebuild phase).
    """
    state = load_checkpoint(path)
    meta = state["meta"]
    # per-type masses: recover the unique per-type values
    types = state["types"]
    masses_per_type = np.zeros(int(types.max()) + 1)
    for t in np.unique(types):
        masses_per_type[t] = state["masses"][types == t][0]

    sim = Simulation(
        state["coords"], types, state["box"], masses_per_type, forcefield,
        dt_fs=meta["dt_fs"],
        skin=meta["skin"],
        sel=tuple(meta["sel"]) if meta["sel"] else None,
        rebuild_every=meta["rebuild_every"],
        thermostat=thermostat,
    )
    # overwrite the freshly drawn state with the checkpointed one
    sim.velocities = state["velocities"]
    sim.step = meta["step"]
    sim.stats.n_force_evals = meta["n_force_evals"]
    # forces were computed at checkpoint time; recompute to repopulate
    # the neighbor structure consistently (bitwise-identical since the
    # positions are identical)
    sim._neighbors = sim._rebuild()
    sim.energy, sim.forces, sim.virial = sim._evaluate()
    sim.thermo_log.clear()
    return sim
