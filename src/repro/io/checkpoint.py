"""Simulation checkpoint/restart (LAMMPS-style restart files).

Week-long campaigns at the paper's scales live and die by restart
fidelity: a checkpoint must capture the full phase-space point plus the
integrator clock so a restarted run continues the *same* trajectory.
Format: a single ``.npz``, no pickling.

Crash safety (mirroring LAMMPS's restart discipline):

* **atomic writes** — the archive is written to a temp file in the same
  directory, fsync'd, then :func:`os.replace`'d over the target, so a
  crash mid-write can never leave a half-written file under the
  checkpoint name;
* **integrity checks** — every array payload carries a CRC32 in the
  metadata, validated on load; a truncated or bit-flipped file raises a
  typed :class:`~repro.robust.errors.CheckpointIntegrityError` instead
  of restarting from garbage;
* **exact continuation** — the neighbor-list build positions are
  persisted, so a checkpoint taken *between* rebuilds restores the very
  neighbor structure (and skin-displacement reference) the original run
  was using, and the ``step % rebuild_every`` phase survives restart.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib

import numpy as np

from ..md.box import Box
from ..md.simulation import Simulation

__all__ = ["save_checkpoint", "checkpoint_payload", "load_checkpoint",
           "restart_simulation", "write_state_checkpoint",
           "read_state_checkpoint", "save_shard_checkpoint",
           "load_shard_checkpoint", "CHECKPOINT_FORMAT"]

#: Format 2 adds CRC32 payload checksums, build-phase arrays, and the
#: full stats/threads metadata.  Format-1 files (no ``format`` key) are
#: still loadable; their missing fields degrade gracefully.
CHECKPOINT_FORMAT = 2

_ARRAY_FIELDS = ("coords", "velocities", "types", "masses", "box_lengths",
                 "forces", "build_coords")

#: Arrays a distributed rank's shard checkpoint must carry: the rank's
#: phase-space slice in local order plus the global ids that map it back,
#: and the neighbor-build reference positions for exact mid-interval
#: restart (see :func:`save_shard_checkpoint`).
_SHARD_REQUIRED = ("ids", "coords", "velocities", "types", "build_coords")


def _integrity_error(message, **detail):
    from ..robust.errors import CheckpointIntegrityError

    return CheckpointIntegrityError(message, **detail)


def normalize_checkpoint_path(path) -> str:
    """``np.savez`` appends ``.npz`` when missing; normalize up front so
    the path we report is the path on disk."""
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    return path


def write_state_checkpoint(path: str, arrays: dict, meta: dict | None = None,
                           metrics=None) -> str:
    """Atomically write named arrays plus JSON metadata with CRC32s.

    The shared writer under every checkpoint flavour (full simulation,
    per-rank shard): per-array CRC32s go into the metadata, the archive
    is written to a same-directory temp file, fsync'd, renamed over the
    target, and the directory entry is fsync'd.  Returns the path
    actually written (``.npz`` appended when missing).

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives the
    measured write cost — ``checkpoint_bytes``/``checkpoint_writes``
    counters, ``checkpoint_write_seconds``/``checkpoint_fsync_seconds``
    histograms, and one ``{"type": "checkpoint"}`` JSONL row — which is
    what :meth:`repro.perf.scaling.CheckpointCostModel.from_metrics`
    feeds back into the scaling projections.
    """
    import time as _time

    t0 = _time.perf_counter()
    path = normalize_checkpoint_path(path)
    meta = dict(meta or {})
    meta.setdefault("format", CHECKPOINT_FORMAT)
    meta["crc"] = {name: zlib.crc32(np.ascontiguousarray(arr).tobytes())
                   for name, arr in arrays.items()}
    payload = dict(arrays)
    payload["meta"] = np.frombuffer(json.dumps(meta).encode(),
                                    dtype=np.uint8)
    tmp = f"{path}.tmp.{os.getpid()}"
    fsync_seconds = 0.0
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
            fh.flush()
            fs0 = _time.perf_counter()
            os.fsync(fh.fileno())
            fsync_seconds = _time.perf_counter() - fs0
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    # Persist the rename itself (POSIX: fsync the directory entry).
    dirname = os.path.dirname(os.path.abspath(path))
    try:
        dir_fd = os.open(dirname, os.O_RDONLY)
        try:
            fs0 = _time.perf_counter()
            os.fsync(dir_fd)
            fsync_seconds += _time.perf_counter() - fs0
        finally:
            os.close(dir_fd)
    except OSError:
        pass
    if metrics is not None:
        nbytes = os.path.getsize(path)
        write_seconds = _time.perf_counter() - t0
        metrics.inc("checkpoint_writes")
        metrics.inc("checkpoint_bytes", nbytes)
        metrics.observe("checkpoint_write_seconds", write_seconds)
        metrics.observe("checkpoint_fsync_seconds", fsync_seconds)
        metrics.emit({"type": "checkpoint",
                      "file": os.path.basename(path),
                      "step": meta.get("step"),
                      "bytes": nbytes,
                      "write_seconds": write_seconds,
                      "fsync_seconds": fsync_seconds})
    return path


def read_state_checkpoint(path: str, required=(), validate: bool = True
                          ) -> dict:
    """Read a state checkpoint back into ``{"meta": ..., name: array}``.

    Raises :class:`~repro.robust.errors.CheckpointIntegrityError` when
    the file is truncated, unreadable, missing a ``required`` array, or
    fails a CRC32 payload check (``validate=False`` skips only the CRC
    pass).
    """
    path = normalize_checkpoint_path(path)
    try:
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            arrays = {name: data[name].copy()
                      for name in data.files if name != "meta"}
    except (OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile, json.JSONDecodeError) as exc:
        raise _integrity_error(
            f"unreadable checkpoint {path!r}: {exc}", path=path) from exc
    for name in required:
        if name not in arrays:
            raise _integrity_error(
                f"checkpoint {path!r} is missing array {name!r}", path=path)
    if validate and "crc" in meta:
        for name, expected in meta["crc"].items():
            if name not in arrays:
                raise _integrity_error(
                    f"checkpoint {path!r} is missing array {name!r}",
                    path=path)
            got = zlib.crc32(np.ascontiguousarray(arrays[name]).tobytes())
            if got != expected:
                raise _integrity_error(
                    f"checkpoint {path!r} failed CRC32 on {name!r}",
                    path=path, array=name, expected=expected, got=got)
    state = {"meta": meta}
    state.update(arrays)
    return state


def save_checkpoint(path: str, sim: Simulation, metrics=None) -> str:
    """Atomically write the simulation's full restartable state.

    Returns the path actually written (``.npz`` appended when missing).
    """
    arrays, meta = checkpoint_payload(sim)
    return write_state_checkpoint(path, arrays, meta, metrics=metrics)


def checkpoint_payload(sim: Simulation) -> tuple[dict, dict]:
    """Snapshot a simulation's restartable state as ``(arrays, meta)``.

    Split out of :func:`save_checkpoint` so the checkpoint manager's
    write-deadline path can capture the state *synchronously* (cheap)
    and hand the blocking disk write to a background worker without
    racing the advancing step loop.
    """
    arrays = {
        "coords": np.asarray(sim.coords, dtype=np.float64),
        "velocities": np.asarray(sim.velocities, dtype=np.float64),
        "types": sim.types,
        "masses": sim.masses,
        "box_lengths": sim.box.lengths,
        "forces": np.asarray(sim.forces, dtype=np.float64),
        # Neighbor-list build reference: restoring the *build-time*
        # positions lets restart reconstruct the exact mid-interval
        # neighbor structure instead of rebuilding at current positions.
        "build_coords": sim._neighbors.build_coords,
    }
    meta = {
        "step": sim.step,
        "dt_fs": sim.dt_fs,
        "rebuild_every": sim.rebuild_every,
        "skin": sim.search.skin,
        "rcut": sim.search.rcut,
        "sel": list(sim.search.sel) if sim.search.sel else None,
        "n_force_evals": sim.stats.n_force_evals,
        "n_steps": sim.stats.n_steps,
        "n_neighbor_builds": sim.stats.n_neighbor_builds,
        "threads": sim.engine.n_threads if sim.engine is not None else 1,
    }
    # Persist the resolved config spine so --restart reproduces the
    # run's threads/layout/chunk/guard settings without re-specifying
    # flags (the resolver's "checkpoint" layer reads this back).
    if getattr(sim, "config", None) is not None:
        meta["config"] = sim.config.to_dict(provenance=True)
    return arrays, meta


def load_checkpoint(path: str, validate: bool = True) -> dict:
    """Read a checkpoint into a plain dict (no model/forcefield inside).

    Raises :class:`~repro.robust.errors.CheckpointIntegrityError` when
    the file is truncated, unreadable, missing arrays, or fails a CRC32
    payload check (``validate=False`` skips only the CRC pass).
    """
    state = read_state_checkpoint(
        path,
        required=("coords", "velocities", "types", "masses", "box_lengths",
                  "forces"),
        validate=validate,
    )
    state = {name: arr for name, arr in state.items()
             if name in _ARRAY_FIELDS or name == "meta"}
    state["box"] = Box(state.pop("box_lengths"))
    state.setdefault("build_coords", None)
    return state


def save_shard_checkpoint(path: str, *, step: int, ids: np.ndarray,
                          coords: np.ndarray, velocities: np.ndarray,
                          types: np.ndarray, build_coords: np.ndarray,
                          thermo: np.ndarray | None = None,
                          meta: dict | None = None, metrics=None) -> str:
    """Write one distributed rank's restartable shard.

    A shard is the rank's slice of the global phase space in *local*
    order — ``ids`` maps rows back to global atoms — plus the positions
    the rank's ghost plan was built from (``build_coords``), so a resume
    between neighbor rebuilds reconstructs the exact exchange structure
    the run was using.  ``thermo`` optionally persists the global thermo
    samples recorded so far (every rank holds identical allreduced
    values), shape ``(n_samples, 6)``.
    """
    arrays = {
        "ids": np.asarray(ids, dtype=np.intp),
        "coords": np.asarray(coords, dtype=np.float64),
        "velocities": np.asarray(velocities, dtype=np.float64),
        "types": np.asarray(types, dtype=np.intp),
        "build_coords": np.asarray(build_coords, dtype=np.float64),
    }
    if thermo is not None:
        arrays["thermo"] = np.asarray(thermo, dtype=np.float64)
    full_meta = {"kind": "shard", "step": int(step)}
    full_meta.update(meta or {})
    return write_state_checkpoint(path, arrays, full_meta, metrics=metrics)


def load_shard_checkpoint(path: str, validate: bool = True) -> dict:
    """Read a rank shard checkpoint written by
    :func:`save_shard_checkpoint` (CRC-validated, typed errors)."""
    state = read_state_checkpoint(path, required=_SHARD_REQUIRED,
                                  validate=validate)
    if state["meta"].get("kind") != "shard":
        raise _integrity_error(
            f"checkpoint {path!r} is not a rank shard", path=path,
            kind=state["meta"].get("kind"))
    state.setdefault("thermo", None)
    return state


def restart_simulation(path: str, forcefield, thermostat=None,
                       threads: int | None = None, engine=None,
                       dt_fs: float | None = None,
                       config=None) -> Simulation:
    """Rebuild a :class:`Simulation` from a checkpoint.

    The force field (model) is supplied by the caller — checkpoints
    store the *state*, models are stored via
    :func:`repro.io.save_compressed`.  The restarted run continues the
    original trajectory exactly: same positions, velocities, step
    counter, stats, and — via the persisted build positions — the same
    neighbor structure and rebuild phase, even for checkpoints taken
    mid-rebuild-interval.

    ``threads``/``engine`` forward the shared-memory configuration so a
    threaded run does not silently restart serial; by default the
    checkpointed thread count is restored.  ``dt_fs`` overrides the
    checkpointed timestep (used by the recovery driver's
    timestep-halving policy).

    ``config`` attaches a resolved :class:`repro.config.RunConfig` to
    the restarted simulation; when omitted, the config persisted inside
    the checkpoint (format >= 2 with a config spine) is rebuilt so the
    restarted run keeps carrying — and re-persisting — its settings.
    """
    state = load_checkpoint(path)
    meta = state["meta"]
    if config is None and isinstance(meta.get("config"), dict):
        from ..config import RunConfig

        config = RunConfig.from_dict(meta["config"])
    # per-type masses: recover the unique per-type values
    types = state["types"]
    masses_per_type = np.zeros(int(types.max()) + 1)
    for t in np.unique(types):
        masses_per_type[t] = state["masses"][types == t][0]
    if threads is None and engine is None:
        threads = int(meta.get("threads", 1))
    if hasattr(forcefield, "rebind"):
        # Restart replay re-resolves the force backend: the model may
        # have been swapped (recompressed, recast) since the force field
        # was built, and the replayed evaluation must use the adapter
        # for the model as it is *now*.
        forcefield.rebind()

    sim = Simulation(
        state["coords"], types, state["box"], masses_per_type, forcefield,
        dt_fs=meta["dt_fs"] if dt_fs is None else float(dt_fs),
        skin=meta["skin"],
        sel=tuple(meta["sel"]) if meta["sel"] else None,
        rebuild_every=meta["rebuild_every"],
        thermostat=thermostat,
        threads=1 if threads is None else int(threads),
        engine=engine,
        velocities=state["velocities"],
        config=config,
        defer_init=True,
    )
    sim.step = meta["step"]
    build_coords = state.get("build_coords")
    if build_coords is not None and \
            not np.array_equal(build_coords, sim.coords):
        # Mid-interval checkpoint: rebuild at the *build-time* positions,
        # then forward-communicate the current positions into the
        # extended array — exactly the structure the original run held.
        sim._neighbors = sim.search.build(build_coords, sim.types, sim.box)
        sim._neighbors.refresh_coords(sim.coords)
        sim._neighbors.build_coords = build_coords.copy()
    else:
        sim._neighbors = sim._rebuild()
    # forces were computed at checkpoint time; recompute to repopulate
    # the model/engine caches consistently (bitwise-identical since the
    # positions and neighbor structure are identical)
    sim.energy, sim.forces, sim.virial = sim._evaluate()
    sim.stats.n_force_evals = meta["n_force_evals"]
    sim.stats.n_steps = int(meta.get("n_steps", 0))
    sim.stats.n_neighbor_builds = int(
        meta.get("n_neighbor_builds", sim.stats.n_neighbor_builds))
    sim.thermo_log.clear()
    return sim
