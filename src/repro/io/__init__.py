"""Serialization (models, tables) and thermo logging."""

from .checkpoint import load_checkpoint, restart_simulation, save_checkpoint
from .logging import ThermoWriter, format_thermo_table
from .model_io import load_compressed, load_model, save_compressed, save_model
from .trajectory import XYZTrajectoryWriter, read_xyz, write_xyz_frame

__all__ = [
    "ThermoWriter",
    "XYZTrajectoryWriter",
    "format_thermo_table",
    "load_checkpoint",
    "load_compressed",
    "load_model",
    "read_xyz",
    "restart_simulation",
    "save_checkpoint",
    "save_compressed",
    "save_model",
    "write_xyz_frame",
]
