"""Serialization (models, tables) and thermo logging."""

from .checkpoint import (
    load_checkpoint,
    load_shard_checkpoint,
    read_state_checkpoint,
    restart_simulation,
    save_checkpoint,
    save_shard_checkpoint,
    write_state_checkpoint,
)
from .logging import ThermoWriter, format_thermo_table
from .model_io import load_compressed, load_model, save_compressed, save_model
from .trajectory import XYZTrajectoryWriter, read_xyz, write_xyz_frame

__all__ = [
    "ThermoWriter",
    "XYZTrajectoryWriter",
    "format_thermo_table",
    "load_checkpoint",
    "load_compressed",
    "load_model",
    "load_shard_checkpoint",
    "read_state_checkpoint",
    "read_xyz",
    "restart_simulation",
    "save_checkpoint",
    "save_compressed",
    "save_model",
    "save_shard_checkpoint",
    "write_state_checkpoint",
    "write_xyz_frame",
]
