"""Thermo-log writer: the paper's every-50-steps thermodynamic record."""

from __future__ import annotations

from ..md.thermo import ThermoState

__all__ = ["ThermoWriter", "format_thermo_table"]

_HEADER = (f"{'step':>8s} {'time/ps':>10s} {'PE/eV':>16s} "
           f"{'KE/eV':>14s} {'T/K':>10s} {'P/bar':>12s}")


def format_thermo_table(states) -> str:
    """Render thermo samples as an aligned text table."""
    lines = [_HEADER]
    lines.extend(s.as_row() for s in states)
    return "\n".join(lines)


class ThermoWriter:
    """Streams thermo samples to a file (and optionally echoes them).

    Use as a context manager so the handle is released even when the run
    dies mid-stream::

        with ThermoWriter("thermo.log") as tw:
            tw.write(state)
    """

    def __init__(self, path: str, echo: bool = False):
        self.path = path
        self.echo = echo
        self._fh = open(path, "w")
        try:
            self._fh.write(_HEADER + "\n")
        except BaseException:
            # Don't leak the handle when the header write itself fails
            # (disk full, closed stream wrapper, ...).
            self._fh.close()
            self._fh = None
            raise
        if echo:
            print(_HEADER)

    @property
    def closed(self) -> bool:
        return self._fh is None

    def write(self, state: ThermoState) -> None:
        if self._fh is None:
            raise ValueError(f"ThermoWriter for {self.path!r} is closed")
        row = state.as_row()
        self._fh.write(row + "\n")
        self._fh.flush()
        if self.echo:
            print(row)

    def close(self) -> None:
        """Release the file handle (idempotent)."""
        if self._fh is not None:
            fh, self._fh = self._fh, None
            fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
