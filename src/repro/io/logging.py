"""Thermo-log writer: the paper's every-50-steps thermodynamic record."""

from __future__ import annotations

from ..md.thermo import ThermoState

__all__ = ["ThermoWriter", "format_thermo_table"]

_HEADER = (f"{'step':>8s} {'time/ps':>10s} {'PE/eV':>16s} "
           f"{'KE/eV':>14s} {'T/K':>10s} {'P/bar':>12s}")


def format_thermo_table(states) -> str:
    """Render thermo samples as an aligned text table."""
    lines = [_HEADER]
    lines.extend(s.as_row() for s in states)
    return "\n".join(lines)


class ThermoWriter:
    """Streams thermo samples to a file (and optionally echoes them)."""

    def __init__(self, path: str, echo: bool = False):
        self.path = path
        self.echo = echo
        self._fh = open(path, "w")
        self._fh.write(_HEADER + "\n")
        if echo:
            print(_HEADER)

    def write(self, state: ThermoState) -> None:
        row = state.as_row()
        self._fh.write(row + "\n")
        self._fh.flush()
        if self.echo:
            print(row)

    def close(self) -> None:
        self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
