"""Extended-XYZ trajectory I/O.

Minimal, dependency-free writer/reader for trajectories (positions +
box + species per frame) in the extended-XYZ dialect most MD tooling
reads (`Lattice="..." Properties=species:S:1:pos:R:3`).
"""

from __future__ import annotations

import numpy as np

from ..md.box import Box

__all__ = ["write_xyz_frame", "XYZTrajectoryWriter", "read_xyz"]


def write_xyz_frame(fh, coords: np.ndarray, symbols, box: Box,
                    comment: str = "") -> None:
    """Append one extended-XYZ frame to an open text file."""
    n = len(coords)
    lx, ly, lz = box.lengths
    lattice = f'{lx:.8f} 0.0 0.0 0.0 {ly:.8f} 0.0 0.0 0.0 {lz:.8f}'
    fh.write(f"{n}\n")
    fh.write(
        f'Lattice="{lattice}" Properties=species:S:1:pos:R:3 {comment}\n'
    )
    for sym, (x, y, z) in zip(symbols, coords):
        fh.write(f"{sym} {x:.8f} {y:.8f} {z:.8f}\n")


class XYZTrajectoryWriter:
    """Streams simulation frames to an extended-XYZ file.

    Parameters
    ----------
    path:
        Output file.
    symbols:
        Per-atom chemical symbols (or a per-type list applied via the
        simulation's types).
    """

    def __init__(self, path: str, symbols):
        self.path = path
        self.symbols = list(symbols)
        self._fh = open(path, "w")
        self.frames_written = 0

    def write(self, coords: np.ndarray, box: Box, step: int = 0,
              energy: float | None = None) -> None:
        comment = f"step={step}"
        if energy is not None:
            comment += f" energy={energy:.10f}"
        write_xyz_frame(self._fh, coords, self.symbols, box, comment)
        self._fh.flush()
        self.frames_written += 1

    def close(self) -> None:
        self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def read_xyz(path: str):
    """Read all frames: list of ``(coords, symbols, box)`` tuples."""
    frames = []
    with open(path) as fh:
        while True:
            header = fh.readline()
            if not header.strip():
                break
            n = int(header)
            meta = fh.readline()
            box = None
            if 'Lattice="' in meta:
                cell = meta.split('Lattice="')[1].split('"')[0].split()
                vals = [float(v) for v in cell]
                box = Box([vals[0], vals[4], vals[8]])
            coords = np.empty((n, 3))
            symbols = []
            for i in range(n):
                parts = fh.readline().split()
                symbols.append(parts[0])
                coords[i] = [float(p) for p in parts[1:4]]
            frames.append((coords, symbols, box))
    return frames
