"""Model and table serialization.

The compressed model's deployable artifact is the coefficient table plus
the fitting nets — the paper quotes its size as the accuracy/size
trade-off of Sec. 3.2 (257 MB at interval 0.001 vs 33 MB at 0.01 for
water).  Format: a single ``.npz`` with a JSON header, no pickling.
"""

from __future__ import annotations

import json

import numpy as np

from ..core.compressed import CompressedDPModel
from ..core.model import DPModel, ModelSpec
from ..core.tabulation import EmbeddingTable

__all__ = ["save_model", "load_model", "save_compressed", "load_compressed"]


def _spec_dict(spec: ModelSpec) -> dict:
    return {
        "rcut": spec.rcut, "rcut_smth": spec.rcut_smth,
        "sel": list(spec.sel), "n_types": spec.n_types, "d1": spec.d1,
        "m_sub": spec.m_sub, "fit_width": spec.fit_width,
        "fit_hidden": spec.fit_hidden, "seed": spec.seed,
    }


def _spec_from_dict(d: dict) -> ModelSpec:
    d = dict(d)
    d["sel"] = tuple(d["sel"])
    return ModelSpec(**d)


def save_model(path: str, model: DPModel) -> None:
    """Write a baseline model: spec header + every layer's parameters."""
    arrays = {"spec": np.frombuffer(
        json.dumps(_spec_dict(model.spec)).encode(), dtype=np.uint8)}
    for kind, nets in (("emb", model.embeddings), ("fit", model.fittings)):
        for t, net in enumerate(nets):
            for i, layer in enumerate(net.layers):
                arrays[f"{kind}{t}_W{i}"] = layer.W
                arrays[f"{kind}{t}_b{i}"] = layer.b
    for t, net in enumerate(model.fittings):
        arrays[f"fit{t}_shift"] = net.input_shift
        arrays[f"fit{t}_scale"] = net.input_scale
    arrays["energy_bias"] = model.energy_bias
    np.savez_compressed(path, **arrays)


def load_model(path: str) -> DPModel:
    """Round-trip of :func:`save_model` (architecture rebuilt from spec)."""
    with np.load(path) as data:
        spec = _spec_from_dict(json.loads(bytes(data["spec"]).decode()))
        model = DPModel(spec)
        for kind, nets in (("emb", model.embeddings), ("fit", model.fittings)):
            for t, net in enumerate(nets):
                for i, layer in enumerate(net.layers):
                    layer.W[...] = data[f"{kind}{t}_W{i}"]
                    layer.b[...] = data[f"{kind}{t}_b{i}"]
        for t, net in enumerate(model.fittings):
            if f"fit{t}_shift" in data.files:
                net.input_shift = data[f"fit{t}_shift"].copy()
                net.input_scale = data[f"fit{t}_scale"].copy()
        model.energy_bias[...] = data["energy_bias"]
    return model


def save_compressed(path: str, model: CompressedDPModel) -> None:
    """Write a compressed model: tables + fitting nets + spec."""
    arrays = {"spec": np.frombuffer(
        json.dumps(_spec_dict(model.spec)).encode(), dtype=np.uint8)}
    for t, table in enumerate(model.tables):
        if not isinstance(table, EmbeddingTable):
            raise ValueError(
                "save_compressed requires AoS tables (the SoA layout is a "
                "runtime transform; rebuild it after loading)"
            )
        arrays[f"table{t}_coeffs"] = table.coeffs
        arrays[f"table{t}_meta"] = np.array(
            [table.x_min, table.interval], dtype=np.float64)
    for t, net in enumerate(model.fittings):
        for i, layer in enumerate(net.layers):
            arrays[f"fit{t}_W{i}"] = layer.W
            arrays[f"fit{t}_b{i}"] = layer.b
        arrays[f"fit{t}_shift"] = net.input_shift
        arrays[f"fit{t}_scale"] = net.input_scale
    arrays["energy_bias"] = model.energy_bias
    np.savez_compressed(path, **arrays)


def load_compressed(path: str) -> CompressedDPModel:
    """Round-trip of :func:`save_compressed`."""
    from ..core.fitting import FittingNet

    with np.load(path) as data:
        spec = _spec_from_dict(json.loads(bytes(data["spec"]).decode()))
        tables = []
        for t in range(spec.n_types):
            x_min, interval = data[f"table{t}_meta"]
            tables.append(EmbeddingTable(
                data[f"table{t}_coeffs"], float(x_min), float(interval)))
        fittings = []
        for t in range(spec.n_types):
            net = FittingNet(spec.descriptor_width, spec.fit_width,
                             spec.fit_hidden)
            for i, layer in enumerate(net.layers):
                layer.W[...] = data[f"fit{t}_W{i}"]
                layer.b[...] = data[f"fit{t}_b{i}"]
            if f"fit{t}_shift" in data.files:
                net.input_shift = data[f"fit{t}_shift"].copy()
                net.input_scale = data[f"fit{t}_scale"].copy()
            fittings.append(net)
        bias = data["energy_bias"].copy()
    return CompressedDPModel(spec, tables, fittings, bias)
