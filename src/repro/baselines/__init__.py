"""Baselines: the 2020 state-of-the-art pipeline and Table 1 literature data."""

from .pipeline import BaselinePipeline
from .reference import TABLE1_LITERATURE, TABLE1_THIS_WORK, Table1Row

__all__ = [
    "BaselinePipeline",
    "TABLE1_LITERATURE",
    "TABLE1_THIS_WORK",
    "Table1Row",
]
