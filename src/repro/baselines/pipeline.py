"""The baseline (state-of-the-art-2020) pipeline as a packaged object.

Bundles the uncompressed :class:`DPModel` with the padded neighbor
layout and flat-MPI launch assumptions — the comparison point every
experiment in the paper measures against.
"""

from __future__ import annotations

import numpy as np

from ..core.model import DPModel
from ..md.neighbor import NeighborSearch
from ..md.simulation import DPForceField, Simulation
from ..workloads.registry import Workload

__all__ = ["BaselinePipeline"]


class BaselinePipeline:
    """End-to-end baseline: padded lists, uncompressed nets.

    Parameters
    ----------
    workload:
        Paper workload descriptor.
    model_kwargs:
        Overrides forwarded to :meth:`Workload.model_spec` — the tests
        shrink ``d1``/``fit_width``/``sel`` to laptop scale without
        changing the dataflow.
    """

    def __init__(self, workload: Workload, **model_kwargs):
        self.workload = workload
        self.spec = workload.model_spec(**model_kwargs)
        self.model = DPModel(self.spec)

    def forcefield(self) -> DPForceField:
        return DPForceField(self.model)

    def search(self, skin: float = 2.0) -> NeighborSearch:
        return NeighborSearch(self.spec.rcut, skin=skin, sel=self.spec.sel)

    def simulation(self, coords, types, box, *, dt_fs=None, seed=0,
                   skin: float = 2.0, **kwargs) -> Simulation:
        """A ready-to-run serial MD simulation with paper defaults."""
        return Simulation(
            coords, types, box,
            masses=self.workload.masses,
            forcefield=self.forcefield(),
            dt_fs=dt_fs if dt_fs is not None else self.workload.dt_fs,
            sel=self.spec.sel,
            skin=skin,
            seed=seed,
            **kwargs,
        )

    def evaluate(self, coords, types, box, skin: float = 2.0):
        """One-shot energy/forces/virial on a configuration."""
        nd = self.search(skin).build(np.asarray(coords), types, box)
        res = self.model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                                  nd.nlist)
        forces = nd.fold_forces(res.forces)
        return res.energy, forces, res.virial
